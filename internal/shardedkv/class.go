package shardedkv

import "repro/internal/core"

// This file provides the op-level class override surface: views of
// Store and AsyncStore whose every operation runs under a fixed
// core.Class regardless of the worker's base class. The mechanism is
// the per-operation ClassHint on core.Worker — the view installs the
// hint, runs the operation, and restores the worker's previous hint
// state — so the override reaches every class consumer on the path:
// the shard lock's acquire policy (ASL big/little admission), combiner
// election cadence and spin-vs-park waiting in the pipeline, epoch
// feedback, and the CSPad keying.
//
// This is the serving-boundary contract of the network front end
// (internal/kvserver): one connection-handler goroutine owns one
// worker but serves requests of BOTH SLO classes, so class must ride
// on the operation, not the goroutine. Views are values (two words);
// make them on the fly: st.As(core.Little).Put(w, k, v).

// classScope saves a worker's hint state and installs an override.
// Restore with restore() — NOT a defer in hot paths; call it on every
// return path (the ops below have exactly one).
type classScope struct {
	w      *core.Worker
	hinted bool
	prev   core.Class
}

func enterClass(w *core.Worker, c core.Class) classScope {
	s := classScope{w: w, hinted: w.ClassHinted(), prev: w.Class()}
	//lint:ignore classhintpair enterClass IS the set half of the pair; every caller is a single-return Classed* method that calls restore() before returning, which the ops below make structurally obvious.
	w.SetClassHint(c)
	return s
}

func (s classScope) restore() {
	if s.hinted {
		//lint:ignore classhintpair this SetClassHint restores the caller's saved hint (the clear half of the pair), it does not install a new scope.
		s.w.SetClassHint(s.prev)
	} else {
		s.w.ClearClassHint()
	}
}

// ClassedStore is a Store view whose operations run as a fixed class.
type ClassedStore struct {
	s *Store
	c core.Class
}

// As returns a view of the store whose operations run with the
// worker's class overridden to c for the operation's duration.
func (s *Store) As(c core.Class) ClassedStore { return ClassedStore{s: s, c: c} }

// Store returns the underlying store.
func (v ClassedStore) Store() *Store { return v.s }

// Class returns the view's class.
func (v ClassedStore) Class() core.Class { return v.c }

// Get reads k as the view's class.
func (v ClassedStore) Get(w *core.Worker, k uint64) ([]byte, bool) {
	sc := enterClass(w, v.c)
	val, ok := v.s.Get(w, k)
	sc.restore()
	return val, ok
}

// Put stores k=v as the view's class; reports insert-vs-replace.
func (v ClassedStore) Put(w *core.Worker, k uint64, val []byte) (bool, error) {
	sc := enterClass(w, v.c)
	ok, err := v.s.Put(w, k, val)
	sc.restore()
	return ok, err
}

// Delete removes k as the view's class; reports presence.
func (v ClassedStore) Delete(w *core.Worker, k uint64) (bool, error) {
	sc := enterClass(w, v.c)
	ok, err := v.s.Delete(w, k)
	sc.restore()
	return ok, err
}

// MultiGet reads all keys as the view's class.
func (v ClassedStore) MultiGet(w *core.Worker, keys []uint64) ([][]byte, []bool) {
	sc := enterClass(w, v.c)
	vals, ok := v.s.MultiGet(w, keys)
	sc.restore()
	return vals, ok
}

// MultiPut writes all pairs as the view's class.
func (v ClassedStore) MultiPut(w *core.Worker, kvs []Pair) (int, error) {
	sc := enterClass(w, v.c)
	n, err := v.s.MultiPut(w, kvs)
	sc.restore()
	return n, err
}

// Range scans [lo, hi] as the view's class. fn runs inside the scope
// (collection has already released every shard lock when it runs).
func (v ClassedStore) Range(w *core.Worker, lo, hi uint64, fn func(k uint64, v []byte) bool) {
	sc := enterClass(w, v.c)
	v.s.Range(w, lo, hi, fn)
	sc.restore()
}

// MultiRange executes all range requests as the view's class.
func (v ClassedStore) MultiRange(w *core.Worker, reqs []RangeReq) [][]Pair {
	sc := enterClass(w, v.c)
	out := v.s.MultiRange(w, reqs)
	sc.restore()
	return out
}

// Flush drives the durability barrier as the view's class.
func (v ClassedStore) Flush(w *core.Worker) error {
	sc := enterClass(w, v.c)
	err := v.s.Flush(w)
	sc.restore()
	return err
}

// Close shuts the shared underlying store down (see Store.Close).
func (v ClassedStore) Close(w *core.Worker) {
	sc := enterClass(w, v.c)
	v.s.Close(w)
	sc.restore()
}

// Stats snapshots the underlying store's per-shard counters.
func (v ClassedStore) Stats() []ShardStats { return v.s.Stats() }

// ClassedAsync is an AsyncStore view whose submissions run as a fixed
// class: the class governs election cadence, spin-vs-park waiting and
// the drain bound if this worker combines — exactly what distinguishes
// an interactive request (elect/combine/spin) from a bulk one
// (enqueue/park) at the serving boundary.
type ClassedAsync struct {
	a *AsyncStore
	c core.Class
}

// As returns a view of the async store whose operations run with the
// worker's class overridden to c.
func (a *AsyncStore) As(c core.Class) ClassedAsync { return ClassedAsync{a: a, c: c} }

// Async returns the underlying AsyncStore.
func (v ClassedAsync) Async() *AsyncStore { return v.a }

// Class returns the view's class.
func (v ClassedAsync) Class() core.Class { return v.c }

// Get reads k through the pipeline as the view's class.
func (v ClassedAsync) Get(w *core.Worker, k uint64) ([]byte, bool) {
	sc := enterClass(w, v.c)
	val, ok := v.a.Get(w, k)
	sc.restore()
	return val, ok
}

// Put stores k=v through the pipeline as the view's class.
func (v ClassedAsync) Put(w *core.Worker, k uint64, val []byte) (bool, error) {
	sc := enterClass(w, v.c)
	ok, err := v.a.Put(w, k, val)
	sc.restore()
	return ok, err
}

// Delete removes k through the pipeline as the view's class.
func (v ClassedAsync) Delete(w *core.Worker, k uint64) (bool, error) {
	sc := enterClass(w, v.c)
	ok, err := v.a.Delete(w, k)
	sc.restore()
	return ok, err
}

// PutAsync submits a fire-and-forget put as the view's class.
func (v ClassedAsync) PutAsync(w *core.Worker, k uint64, val []byte) {
	sc := enterClass(w, v.c)
	v.a.PutAsync(w, k, val)
	sc.restore()
}

// DeleteAsync submits a fire-and-forget delete as the view's class.
func (v ClassedAsync) DeleteAsync(w *core.Worker, k uint64) {
	sc := enterClass(w, v.c)
	v.a.DeleteAsync(w, k)
	sc.restore()
}

// MultiGet reads all keys through the pipeline as the view's class.
func (v ClassedAsync) MultiGet(w *core.Worker, keys []uint64) ([][]byte, []bool) {
	sc := enterClass(w, v.c)
	vals, ok := v.a.MultiGet(w, keys)
	sc.restore()
	return vals, ok
}

// MultiPut writes all pairs through the pipeline as the view's class.
func (v ClassedAsync) MultiPut(w *core.Worker, kvs []Pair) (int, error) {
	sc := enterClass(w, v.c)
	n, err := v.a.MultiPut(w, kvs)
	sc.restore()
	return n, err
}

// Range scans [lo, hi] through the pipeline as the view's class.
func (v ClassedAsync) Range(w *core.Worker, lo, hi uint64, fn func(k uint64, v []byte) bool) {
	sc := enterClass(w, v.c)
	v.a.Range(w, lo, hi, fn)
	sc.restore()
}

// MultiRange executes all range requests through the pipeline as the
// view's class.
func (v ClassedAsync) MultiRange(w *core.Worker, reqs []RangeReq) [][]Pair {
	sc := enterClass(w, v.c)
	out := v.a.MultiRange(w, reqs)
	sc.restore()
	return out
}

// Flush drives the write barrier as the view's class (the class
// governs the combining the flush itself performs).
func (v ClassedAsync) Flush(w *core.Worker) error {
	sc := enterClass(w, v.c)
	err := v.a.Flush(w)
	sc.restore()
	return err
}

// Close shuts the shared pipeline down (see AsyncStore.Close).
func (v ClassedAsync) Close(w *core.Worker) {
	sc := enterClass(w, v.c)
	v.a.Close(w)
	sc.restore()
}

// Stats snapshots the underlying store's per-shard counters.
func (v ClassedAsync) Stats() []ShardStats { return v.a.st.Stats() }
