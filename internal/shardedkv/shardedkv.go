// Package shardedkv composes the repository's pieces into a servable
// KV layer: N shards, each an independently contended lock guarding a
// pluggable storage engine.
//
// Layering (top to bottom):
//
//	Store            — key → shard routing through a copy-on-write
//	                   shard map, batched MultiGet/MultiPut, ordered
//	                   Range/MultiRange scans merged across shards,
//	                   skew-adaptive shard splitting (reshard.go)
//	locks.WLock      — one lock per shard; ASLMutex by default, so
//	                   big-core workers take the FIFO fast path and
//	                   little-core workers stand by within their
//	                   epoch's reorder window (paper Algorithm 3)
//	Engine           — hashkv / btree / lsm / skiplist behind one
//	                   interface; engines are single-writer structures
//	                   and rely entirely on the shard lock
//
// The paper evaluates LibASL under databases whose lock topology is a
// handful of global locks (Table 1); a sharded store is the natural
// production topology on top: each shard is exactly the kind of
// heavily contended, short-critical-section lock the reorderable
// algorithm targets, and admission decisions stay local to the shard
// (compare "Fissile Locks" and Dice & Kogan's concurrency-restriction
// argument for keeping such decisions cheap and per-lock).
//
// Placement is no longer a fixed modulo: lookups go through an
// immutable shard-map snapshot (shardmap.go) swapped atomically when a
// skew detector (reshard.go) splits a shard whose measured traffic
// share and lock-wait fraction say the zipf head has made it a convoy.
// Snapshot readers re-validate after acquiring the shard lock: a split
// parent forwards to its children, so a stale snapshot costs one extra
// lock hop, never a wrong answer.
//
// Batched operations sort keys by shard so each shard lock is taken at
// most once per batch, turning k point-lookups into one acquisition
// per touched shard; under asymmetric contention this matters doubly,
// because every acquisition a little-core worker avoids is one fewer
// standby wait.
//
// Range scans follow the same discipline one level up: keys are
// hash-distributed, so every shard holds an interleaved slice of any
// key range. Store.Range visits one shard at a time (lock taken once
// per shard, held only while that shard's slice is collected) and
// merges the per-shard results into one ascending emission;
// MultiRange batches several ranges through a single pass, each shard
// lock taken once for the whole request set. Scans are the first op
// class here whose critical-section length is data-dependent — the
// long-holder case the ASL reorder window is designed to absorb.
//
// Store is safe for concurrent use by any number of workers; each
// worker must own its *core.Worker (they are per-goroutine, like the
// paper's __thread state).
//
// Value ownership follows the embedded-KV convention: Put retains the
// value slice by reference, so the caller must not modify it after
// the call (pass a copy to reuse a buffer), and Get returns the
// stored slice, which the caller must treat as read-only.
package shardedkv

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/wal"
)

// Engine is the per-shard storage interface. Implementations are NOT
// required to be concurrency-safe: the shard lock serialises all
// access, exactly as the slot locks do in the Kyoto-like engine.
type Engine interface {
	// Get reads k. The returned slice is the stored one: read-only
	// for the caller.
	Get(k uint64) ([]byte, bool)
	// Put stores k=v and reports whether a new key was inserted
	// (false = an existing key was replaced). v is retained by
	// reference; the caller must not modify it afterwards.
	Put(k uint64, v []byte) bool
	// Delete removes k and reports whether it was present.
	Delete(k uint64) bool
	// Len returns the number of live keys.
	Len() int
	// Range calls fn for each key in [lo, hi] in ascending key order
	// until fn returns false. Every engine returns the same ordered
	// view, whatever its internal layout: ordered structures walk,
	// the hash table collects and sorts, the LSM merges memtable and
	// runs with newest-wins shadowing.
	Range(lo, hi uint64, fn func(k uint64, v []byte) bool)
}

// KV is one key/value pair of a batched put.
type Pair struct {
	Key   uint64
	Value []byte
}

// Config configures a Store.
type Config struct {
	// Shards is the shard count; 0 means 16.
	Shards int
	// NewEngine builds shard i's storage engine; nil means hash-table
	// engines (NewHashEngine). Split children call it with fresh ids
	// past the initial count.
	NewEngine func(shard int) Engine
	// NewLock builds one shard lock; nil means the paper's default
	// ASL stack (locks.FactoryASL). Use locks.Factory wrappers to
	// compare plain mutexes, MCS, etc. under identical sharding.
	NewLock locks.Factory
	// CSPad, if non-nil, runs once per engine operation while the
	// shard lock is held. Benchmarks on symmetric hosts use it with
	// workload.AsymmetryShim to emulate the paper's AMP regime, where
	// a little-core holder keeps the lock proportionally longer (see
	// DESIGN.md substitutions). Leave nil in production use.
	CSPad func(w *core.Worker)
	// Reshard, if non-nil, enables dynamic resharding: shard locks are
	// wrapped with contention counters and a skew detector splits
	// sustained hot shards (see reshard.go). Nil keeps the static seed
	// behaviour bit for bit.
	Reshard *ReshardConfig
	// TrackContention wraps shard locks with locks.Contended counters
	// (populating ShardStats.LockAttempts/LockContended) without
	// enabling resharding. Implied by Reshard.
	TrackContention bool
	// Bias wraps every shard lock with locks.Biased under the Contended
	// counter: a shard whose combining pipeline observes one worker
	// taking essentially every lock acquisition adopts that worker as
	// the bias owner (plain-atomic fast path, no contended RMW per op),
	// and any other worker's blocking acquire revokes the bias through
	// the epoch/handshake grace period. Splits revoke the parent's bias
	// before the children take over (the split rendezvous is itself a
	// foreign blocking acquire). See Store.AggregateBiasStats.
	Bias bool
	// BiasConfig tunes adoption and revocation when Bias is set; the
	// zero value picks the locks.BiasedConfig defaults.
	BiasConfig locks.BiasedConfig
	// Durability, if non-nil, gives every shard a write-ahead log under
	// Dir (durable.go): writes append under the shard lock and group-
	// commit one fsync per batch after release, with the sync policy
	// keyed to the writer's SLO class. New replays any previous run
	// found in Dir before serving. Nil keeps the store volatile.
	Durability *DurabilityConfig
}

// ShardStats is a snapshot of one shard's operation counters.
type ShardStats struct {
	Gets, Puts, Deletes uint64
	// Scans counts engine range invocations on this shard: one per
	// (Range, shard) and one per (MultiRange request, shard). Scans
	// are the data-dependent-length op class, so they are tallied
	// apart from the point counters (and excluded from Ops).
	Scans uint64
	// BatchLocks counts lock acquisitions made on behalf of batched
	// operations: one per (batch, touched shard), not one per key.
	BatchLocks uint64
	// LockAttempts and LockContended mirror the shard lock's
	// locks.ContentionStats — every acquire/try attempt, and the
	// subset that found the lock held. Zero unless the store wraps
	// its locks (Reshard or TrackContention); the skew detector reads
	// the contended fraction to tell a convoy from mere traffic.
	LockAttempts, LockContended uint64
}

// Ops returns the total point-operation count (scans excluded).
func (s ShardStats) Ops() uint64 { return s.Gets + s.Puts + s.Deletes }

// shard is one lock+engine pair plus its place in the shard map. The
// trailing pad keeps adjacent shards' hot counters off each other's
// cache lines.
type shard struct {
	lock locks.WLock
	eng  Engine
	// cont is the lock's contention counter when the store wraps its
	// locks; nil otherwise.
	cont *locks.Contended
	// biased is the lock's bias wrapper when Config.Bias is set; nil
	// otherwise. It sits under cont in the stack (Contended over Biased
	// over the base lock), so election probes reach it via cont.Inner()
	// and real foreign waits against a live bias feed the skew detector.
	biased *locks.Biased
	// id is the shard's creation ordinal: stable across map swaps,
	// ascending in Stats order. group/depth place the shard in the
	// map's extendible directory (shardmap.go).
	id    int
	group int
	depth uint
	// forward, once set (under lock, by split), says this shard's keys
	// moved to two children; it never reverts to nil.
	forward atomic.Pointer[splitRecord]
	// pipe is the shard's combining-pipeline state when an AsyncStore
	// is attached (pipeline.go); nil otherwise.
	pipe atomic.Pointer[pipeShard]
	// wal is the shard's append-only log when Config.Durability is set;
	// nil otherwise. Appends run under the shard lock (buffered, no
	// fsync); Commit/Sync run strictly after release (durable.go).
	wal *wal.Log
	// degraded, once set, marks the shard read-only after a log
	// failure (degraded.go). One-way, first cause wins; only ever
	// non-nil when wal is non-nil.
	degraded atomic.Pointer[DegradedError]
	gets     atomic.Uint64
	puts     atomic.Uint64
	deletes  atomic.Uint64
	scans    atomic.Uint64
	batches  atomic.Uint64
	_        [64]byte
}

// electTry is the combiner-election TryAcquire: on a
// contention-wrapped lock it probes the inner lock directly, because
// election probes fail BY DESIGN whenever another combiner is serving
// the ring — counting them would saturate the skew detector's wait
// signal and make every pipelined shard look convoyed. Real waits
// (blocking acquires, ring-full fallbacks) stay counted.
func (sh *shard) electTry(w *core.Worker) bool {
	if sh.cont != nil {
		return sh.cont.Inner().TryAcquire(w)
	}
	return sh.lock.TryAcquire(w)
}

// stats snapshots this shard's counters.
func (sh *shard) stats() ShardStats {
	st := ShardStats{
		Gets:       sh.gets.Load(),
		Puts:       sh.puts.Load(),
		Deletes:    sh.deletes.Load(),
		Scans:      sh.scans.Load(),
		BatchLocks: sh.batches.Load(),
	}
	if sh.cont != nil {
		cs := sh.cont.Stats()
		st.LockAttempts, st.LockContended = cs.Attempts, cs.Contended
	}
	return st
}

// Store is the sharded KV service layer.
type Store struct {
	smap  atomic.Pointer[shardMap]
	csPad func(w *core.Worker)

	// Split machinery (shardmap.go / reshard.go). newLock/newEngine
	// build children; splitMu serialises splits, map swaps, and
	// AsyncStore attachment; retired accumulates counters of shards
	// that split away so aggregates never lose history.
	newLock   locks.Factory
	newEngine func(shard int) Engine
	contend   bool
	bias      bool
	biasCfg   locks.BiasedConfig
	maxShards int
	splitMu   sync.Mutex
	nextID    int
	splits    atomic.Uint64
	events    atomic.Uint64
	async     atomic.Pointer[AsyncStore]
	retired   retiredStats
	detector  *reshardDetector
	// dur is the durability state when Config.Durability is set
	// (durable.go); nil otherwise.
	dur *durability
	// degradeEvents counts shards flipped read-only (degraded.go).
	degradeEvents atomic.Uint64
}

// retiredStats accumulates the counters of split-away shards.
type retiredStats struct {
	gets, puts, deletes, scans, batches atomic.Uint64
	lockAttempts, lockContended         atomic.Uint64
	// Bias counters of retired shards (Config.Bias only): a split
	// parent's adoptions/revocations must survive the map swap for
	// AggregateBiasStats to stay monotone.
	biasAdoptions, biasRevocations  atomic.Uint64
	biasFast, biasSlow, biasForeign atomic.Uint64
}

// foldRetired folds a split parent's counters into the retired
// accumulator (caller holds splitMu and the shard's lock).
func (s *Store) foldRetired(sh *shard) {
	st := sh.stats()
	s.retired.gets.Add(st.Gets)
	s.retired.puts.Add(st.Puts)
	s.retired.deletes.Add(st.Deletes)
	s.retired.scans.Add(st.Scans)
	s.retired.batches.Add(st.BatchLocks)
	s.retired.lockAttempts.Add(st.LockAttempts)
	s.retired.lockContended.Add(st.LockContended)
	if sh.biased != nil {
		bs := sh.biased.Stats()
		s.retired.biasAdoptions.Add(bs.Adoptions)
		s.retired.biasRevocations.Add(bs.Revocations)
		s.retired.biasFast.Add(bs.FastAcquires)
		s.retired.biasSlow.Add(bs.SlowAcquires)
		s.retired.biasForeign.Add(bs.ForeignTries)
	}
}

// New builds a store from cfg. With Config.Durability set it panics
// on log-directory I/O errors (startup disk failure is fatal to a
// durable store); use Open to handle those as errors. Torn or corrupt
// log records are NOT errors — recovery truncates them.
func New(cfg Config) *Store {
	s, err := Open(cfg)
	if err != nil {
		panic(fmt.Sprintf("shardedkv: durable open failed: %v", err))
	}
	return s
}

// Open is New with the durability I/O errors surfaced. Without
// Config.Durability it cannot fail.
func Open(cfg Config) (*Store, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.NewEngine == nil {
		cfg.NewEngine = func(int) Engine { return NewHashEngine(256) }
	}
	if cfg.NewLock == nil {
		cfg.NewLock = locks.FactoryASL()
	}
	s := &Store{
		csPad:     cfg.CSPad,
		newLock:   cfg.NewLock,
		newEngine: cfg.NewEngine,
		contend:   cfg.Reshard != nil || cfg.TrackContention,
		bias:      cfg.Bias,
		biasCfg:   cfg.BiasConfig,
	}
	if d := cfg.Durability; d != nil {
		gen, err := readCurrentGen(d.Dir)
		if err != nil {
			return nil, err
		}
		s.dur = &durability{
			root:   d.Dir,
			genDir: genDirName(d.Dir, gen+1),
			opts:   wal.Options{SegmentBytes: d.SegmentBytes, FS: d.FS},
			wait: [2]bool{
				core.Big:    resolveWait(d.Interactive, true),
				core.Little: resolveWait(d.Bulk, false),
			},
		}
	}
	m := &shardMap{groups: make([][]*shard, cfg.Shards), shards: make([]*shard, cfg.Shards)}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := s.newShard(i, i, 0)
		if err != nil {
			return nil, err
		}
		m.groups[i] = []*shard{sh}
		m.shards[i] = sh
	}
	s.nextID = cfg.Shards
	s.smap.Store(m)
	if cfg.Durability != nil {
		if err := openDurable(s, cfg.Durability); err != nil {
			return nil, err
		}
	}
	if cfg.Reshard != nil {
		s.startReshard(*cfg.Reshard)
	}
	return s, nil
}

// NumShards returns the current live shard count (grows with splits).
func (s *Store) NumShards() int { return len(s.smap.Load().shards) }

// MapEpoch returns the shard map's generation: 0 at creation, +1 per
// split. Callers comparing epochs across two reads can tell whether
// placement moved between them.
func (s *Store) MapEpoch() uint64 { return s.smap.Load().epoch }

// ShardOf maps a key to its shard's stable id under the current map
// (splitmix64's finalizer, so adjacent keys spread across shards). On
// a store that has never split, ids coincide with the seed's 0..N-1
// indices; after splits, ids identify shards across map epochs but a
// concurrent split may retire the returned id before the caller uses
// it — treat it as a routing hint, not a handle.
func (s *Store) ShardOf(k uint64) int {
	return s.smap.Load().locate(hashOf(k)).id
}

// pad runs the configured critical-section padding, if any.
func (s *Store) pad(w *core.Worker) {
	if s.csPad != nil {
		s.csPad(w)
	}
}

// Get reads k on behalf of worker w.
func (s *Store) Get(w *core.Worker, k uint64) ([]byte, bool) {
	sh := s.acquireLive(w, hashOf(k))
	v, ok := sh.eng.Get(k)
	s.pad(w)
	sh.lock.Release(w)
	sh.gets.Add(1)
	return v, ok
}

// Put stores k=v on behalf of worker w; reports insert-vs-replace.
// With durability on, the record is appended (buffered) under the
// shard lock — strictly before the engine apply, so memory is always
// a replay of the log — and, for a sync-wait class, committed after
// release: wal.Commit's leader election is the commit pipeline, so
// this writer either piggybacks on an in-flight group sync or leads
// one for every append since the last. A log failure degrades the
// shard (degraded.go) and returns the typed error; a non-nil error
// means no durability ack, whatever the bool says.
func (s *Store) Put(w *core.Worker, k uint64, v []byte) (bool, error) {
	sh := s.acquireLive(w, hashOf(k))
	lg := sh.wal
	var lsn uint64
	if lg != nil {
		if de := sh.degraded.Load(); de != nil {
			sh.lock.Release(w)
			return false, de
		}
		var err error
		if lsn, err = lg.Append(wal.KindPut, k, v); err != nil {
			de := s.degrade(sh, err)
			sh.lock.Release(w)
			return false, de
		}
	}
	inserted := sh.eng.Put(k, v)
	s.pad(w)
	sh.lock.Release(w)
	sh.puts.Add(1)
	if lg != nil && s.syncWaitFor(w) {
		if err := lg.Commit(lsn); err != nil {
			return inserted, s.degrade(sh, err)
		}
	}
	return inserted, nil
}

// Delete removes k on behalf of worker w; reports presence. Sync
// policy and degraded-mode behaviour as in Put.
func (s *Store) Delete(w *core.Worker, k uint64) (bool, error) {
	sh := s.acquireLive(w, hashOf(k))
	lg := sh.wal
	var lsn uint64
	if lg != nil {
		if de := sh.degraded.Load(); de != nil {
			sh.lock.Release(w)
			return false, de
		}
		var err error
		if lsn, err = lg.Append(wal.KindDelete, k, nil); err != nil {
			de := s.degrade(sh, err)
			sh.lock.Release(w)
			return false, de
		}
	}
	present := sh.eng.Delete(k)
	s.pad(w)
	sh.lock.Release(w)
	sh.deletes.Add(1)
	if lg != nil && s.syncWaitFor(w) {
		if err := lg.Commit(lsn); err != nil {
			return present, s.degrade(sh, err)
		}
	}
	return present, nil
}

// Len returns the total live-key count, locking one shard at a time
// (the answer is a consistent per-shard sum, like Kyoto's count).
func (s *Store) Len(w *core.Worker) int {
	n := 0
	s.forEachLive(w, func(sh *shard) { n += sh.eng.Len() })
	return n
}

// Range calls fn for every key in [lo, hi] in ascending key order.
// Keys are hash-distributed, so each shard holds an interleaved slice
// of the range; Range visits one shard at a time — each shard lock
// taken exactly once, held only while that shard's slice is collected
// — then merges the per-shard results in key order before emitting.
// The view is per-shard consistent, not globally atomic: a writer may
// land on an unvisited shard mid-scan, the usual contract for sharded
// scans. fn returning false stops the emission (the collection cost is
// already paid).
func (s *Store) Range(w *core.Worker, lo, hi uint64, fn func(k uint64, v []byte) bool) {
	var lists [][]Pair
	s.forEachLive(w, func(sh *shard) {
		var l []Pair
		sh.eng.Range(lo, hi, func(k uint64, v []byte) bool {
			l = append(l, Pair{Key: k, Value: v})
			return true
		})
		s.pad(w)
		sh.scans.Add(1)
		if len(l) > 0 {
			lists = append(lists, l)
		}
	})
	for _, kv := range mergeKV(lists) {
		if !fn(kv.Key, kv.Value) {
			return
		}
	}
}

// RangeReq is one [Lo, Hi] scan of a batched MultiRange.
type RangeReq struct{ Lo, Hi uint64 }

// batchRanger is an optional Engine extension for engines whose Range
// pays a full-structure walk regardless of span (the hash table):
// MultiRange hands them the whole request batch so one walk — not one
// per request — runs under each shard lock. BatchRange must emit each
// request's in-range pairs in ascending key order.
type batchRanger interface {
	BatchRange(reqs []RangeReq, emit func(req int, k uint64, v []byte))
}

// unorderedScanner is an optional Engine extension: a full walk with
// no ordering guarantee, cheaper than Range(0, ^0) on engines that
// sort (the hash table). Split partitioning prefers it.
type unorderedScanner interface {
	Scan(fn func(k uint64, v []byte) bool)
}

// collectShardRanges collects every request's slice of one shard's
// engine into parts (parts[i] extends with request i's in-range pairs,
// in ascending key order). Caller holds the shard lock; one pad per
// engine walk, exactly as the point ops pay one pad per operation.
func (s *Store) collectShardRanges(w *core.Worker, sh *shard, reqs []RangeReq, parts [][]Pair) {
	if br, ok := sh.eng.(batchRanger); ok {
		// One engine walk serves the whole batch: one pad, one
		// engine operation.
		br.BatchRange(reqs, func(ri int, k uint64, v []byte) {
			parts[ri] = append(parts[ri], Pair{Key: k, Value: v})
		})
		s.pad(w)
	} else {
		for ri, r := range reqs {
			sh.eng.Range(r.Lo, r.Hi, func(k uint64, v []byte) bool {
				parts[ri] = append(parts[ri], Pair{Key: k, Value: v})
				return true
			})
			s.pad(w)
		}
	}
	sh.scans.Add(uint64(len(reqs)))
}

// MultiRange executes all range requests in one pass over the shards,
// grouped by shard like MultiGet: each shard's lock is taken exactly
// once, and while it is held every request collects that shard's slice
// of its range. out[i] is request i's result in ascending key order.
// Requests see the same per-shard-consistent view as Range, and all
// requests see each shard at the same instant (they share the lock
// take).
func (s *Store) MultiRange(w *core.Worker, reqs []RangeReq) [][]Pair {
	out := make([][]Pair, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	var perShard [][][]Pair // per visited shard: parts per request
	s.forEachLive(w, func(sh *shard) {
		parts := make([][]Pair, len(reqs))
		s.collectShardRanges(w, sh, reqs, parts)
		sh.batches.Add(1)
		perShard = append(perShard, parts)
	})
	lists := make([][]Pair, len(perShard))
	for ri := range reqs {
		for si, parts := range perShard {
			lists[si] = parts[ri]
		}
		out[ri] = mergeKV(lists)
	}
	return out
}

// mergeKV merges per-shard sorted KV lists into one ascending list.
// Shard counts are small, so a select-the-min pass beats heap
// bookkeeping.
func mergeKV(lists [][]Pair) []Pair {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]Pair, 0, total)
	idx := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if idx[i] < len(l) && (best < 0 || l[idx[i]].Key < lists[best][idx[best]].Key) {
				best = i
			}
		}
		out = append(out, lists[best][idx[best]])
		idx[best]++
	}
	return out
}

// idxGroup is one batched-op work unit: the batch indices routed to
// one shard. Groups re-split along the forward chain when the shard
// moved (see execGrouped).
type idxGroup struct {
	sh  *shard
	idx []int
}

// execGrouped routes batch indices to shards under the current map
// snapshot and runs exec once per touched live shard with its lock
// held. A group whose shard split re-partitions along the forward
// record's hash bit and requeues on the children, so every index
// executes on the engine that owns its key — the batched analogue of
// acquireLive's hop. Groups are visited in ascending shard-id order
// (children after their parents); within a group, batch order is
// preserved, so later puts of a duplicate key win as in sequential
// semantics.
func (s *Store) execGrouped(w *core.Worker, n int, hash func(i int) uint64, exec func(sh *shard, idx []int)) {
	if n == 0 {
		return
	}
	m := s.smap.Load()
	hs := make([]uint64, n)
	byShard := make(map[*shard][]int, 8)
	for i := 0; i < n; i++ {
		hs[i] = hash(i)
		sh := m.locate(hs[i])
		byShard[sh] = append(byShard[sh], i)
	}
	work := make([]idxGroup, 0, len(byShard))
	for _, sh := range m.shards {
		if idx, ok := byShard[sh]; ok {
			work = append(work, idxGroup{sh: sh, idx: idx})
		}
	}
	for len(work) > 0 {
		g := work[0]
		work = work[1:]
		g.sh.lock.Acquire(w)
		if f := g.sh.forward.Load(); f != nil {
			g.sh.lock.Release(w)
			var kidIdx [2][]int
			for _, i := range g.idx {
				kidIdx[(subIdx(hs[i])>>f.bit)&1] = append(kidIdx[(subIdx(hs[i])>>f.bit)&1], i)
			}
			for b, idx := range kidIdx {
				if len(idx) > 0 {
					work = append(work, idxGroup{sh: f.kids[b], idx: idx})
				}
			}
			continue
		}
		//lint:ignore lockheldcall exec is execGrouped's internal per-shard visitor, not user code: MultiGet/MultiPut pass engine-only closures that collect into preallocated slices, and the public emit happens after this loop releases.
		exec(g.sh, g.idx)
		g.sh.lock.Release(w)
	}
}

// MultiGet reads all keys in one pass, taking each touched shard's
// lock exactly once. vals[i] and ok[i] correspond to keys[i].
func (s *Store) MultiGet(w *core.Worker, keys []uint64) (vals [][]byte, ok []bool) {
	vals = make([][]byte, len(keys))
	ok = make([]bool, len(keys))
	s.execGrouped(w, len(keys), func(i int) uint64 { return hashOf(keys[i]) }, func(sh *shard, idx []int) {
		for _, i := range idx {
			vals[i], ok[i] = sh.eng.Get(keys[i])
			s.pad(w)
		}
		sh.gets.Add(uint64(len(idx)))
		sh.batches.Add(1)
	})
	return vals, ok
}

// MultiPut writes all pairs in one pass, taking each touched shard's
// lock exactly once. Returns the number of newly inserted keys.
// Duplicate keys within the batch apply in batch order (last wins).
// With durability on, each touched shard logs its whole sub-batch
// under the one lock take — record by record, append before apply, so
// a mid-batch log failure leaves memory equal to the appended prefix
// — and a sync-wait class pays at most one group commit per touched
// shard, after every lock is released. A non-nil error means at least
// one shard degraded: its pairs (and for a sync-wait class, every
// pair) carry no durability ack; pairs on healthy shards still
// applied.
func (s *Store) MultiPut(w *core.Worker, kvs []Pair) (int, error) {
	type walMark struct {
		sh  *shard
		lsn uint64
	}
	inserted := 0
	var firstErr error
	var marks []walMark
	s.execGrouped(w, len(kvs), func(i int) uint64 { return hashOf(kvs[i].Key) }, func(sh *shard, idx []int) {
		applied := 0
		if sh.wal != nil {
			if de := sh.degraded.Load(); de != nil {
				if firstErr == nil {
					firstErr = de
				}
				return
			}
			var lsn uint64
			for _, i := range idx {
				l, err := sh.wal.Append(wal.KindPut, kvs[i].Key, kvs[i].Value)
				if err != nil {
					if firstErr == nil {
						firstErr = s.degrade(sh, err)
					}
					break
				}
				lsn = l
				if sh.eng.Put(kvs[i].Key, kvs[i].Value) {
					inserted++
				}
				s.pad(w)
				applied++
			}
			if applied > 0 {
				marks = append(marks, walMark{sh: sh, lsn: lsn})
			}
		} else {
			for _, i := range idx {
				if sh.eng.Put(kvs[i].Key, kvs[i].Value) {
					inserted++
				}
				s.pad(w)
				applied++
			}
		}
		sh.puts.Add(uint64(applied))
		sh.batches.Add(1)
	})
	if len(marks) > 0 && s.syncWaitFor(w) {
		for _, m := range marks {
			if err := m.sh.wal.Commit(m.lsn); err != nil {
				de := s.degrade(m.sh, err)
				if firstErr == nil {
					firstErr = de
				}
			}
		}
	}
	return inserted, firstErr
}

// Stats snapshots every live shard's counters under the current map,
// in ascending shard-id order (seed shards first, split children
// after). The snapshot is not atomic across shards (counters advance
// concurrently), which is fine for the throughput reporting it feeds.
// Counters of shards that have split away are NOT here — they live in
// the retired accumulator AggregateStats folds back in.
func (s *Store) Stats() []ShardStats {
	m := s.smap.Load()
	out := make([]ShardStats, len(m.shards))
	for i, sh := range m.shards {
		out[i] = sh.stats()
	}
	return out
}

// AggregateStats sums Stats across live shards plus every shard that
// has split away, so totals survive any number of map swaps. It
// serialises with splits (splitMu): a split folds the retired shard's
// counters moments before the map swap drops the shard, and an
// unserialised reader in that window would count the shard's whole
// history twice. Splits hold the mutex across the rendezvous, so this
// can block for a split's duration (~ms) — it is a reporting call.
func (s *Store) AggregateStats() ShardStats {
	s.splitMu.Lock()
	defer s.splitMu.Unlock()
	agg := ShardStats{
		Gets:          s.retired.gets.Load(),
		Puts:          s.retired.puts.Load(),
		Deletes:       s.retired.deletes.Load(),
		Scans:         s.retired.scans.Load(),
		BatchLocks:    s.retired.batches.Load(),
		LockAttempts:  s.retired.lockAttempts.Load(),
		LockContended: s.retired.lockContended.Load(),
	}
	for _, st := range s.Stats() {
		agg.Gets += st.Gets
		agg.Puts += st.Puts
		agg.Deletes += st.Deletes
		agg.Scans += st.Scans
		agg.BatchLocks += st.BatchLocks
		agg.LockAttempts += st.LockAttempts
		agg.LockContended += st.LockContended
	}
	return agg
}

// BiasStats snapshots every live shard's bias counters in ascending
// shard-id order. All-zero snapshots (and an empty aggregate) when
// Config.Bias is off.
func (s *Store) BiasStats() []locks.BiasStats {
	m := s.smap.Load()
	out := make([]locks.BiasStats, len(m.shards))
	for i, sh := range m.shards {
		if sh.biased != nil {
			out[i] = sh.biased.Stats()
		}
	}
	return out
}

// AggregateBiasStats sums bias counters across live shards plus every
// shard that split away, under splitMu for the same no-double-count
// reason as AggregateStats.
func (s *Store) AggregateBiasStats() locks.BiasStats {
	s.splitMu.Lock()
	defer s.splitMu.Unlock()
	agg := locks.BiasStats{
		Adoptions:    s.retired.biasAdoptions.Load(),
		Revocations:  s.retired.biasRevocations.Load(),
		FastAcquires: s.retired.biasFast.Load(),
		SlowAcquires: s.retired.biasSlow.Load(),
		ForeignTries: s.retired.biasForeign.Load(),
	}
	for _, bs := range s.BiasStats() {
		agg.Add(bs)
	}
	return agg
}

// String summarises the shard layout.
func (s *Store) String() string {
	m := s.smap.Load()
	return fmt.Sprintf("shardedkv.Store{shards: %d, epoch: %d}", len(m.shards), m.epoch)
}
