// Package shardedkv composes the repository's pieces into a servable
// KV layer: N shards, each an independently contended lock guarding a
// pluggable storage engine.
//
// Layering (top to bottom):
//
//	Store            — key → shard routing, batched MultiGet/MultiPut,
//	                   ordered Range/MultiRange scans merged across
//	                   shards
//	locks.WLock      — one lock per shard; ASLMutex by default, so
//	                   big-core workers take the FIFO fast path and
//	                   little-core workers stand by within their
//	                   epoch's reorder window (paper Algorithm 3)
//	Engine           — hashkv / btree / lsm / skiplist behind one
//	                   interface; engines are single-writer structures
//	                   and rely entirely on the shard lock
//
// The paper evaluates LibASL under databases whose lock topology is a
// handful of global locks (Table 1); a sharded store is the natural
// production topology on top: each shard is exactly the kind of
// heavily contended, short-critical-section lock the reorderable
// algorithm targets, and admission decisions stay local to the shard
// (compare "Fissile Locks" and Dice & Kogan's concurrency-restriction
// argument for keeping such decisions cheap and per-lock).
//
// Batched operations sort keys by shard so each shard lock is taken at
// most once per batch, turning k point-lookups into one acquisition
// per touched shard; under asymmetric contention this matters doubly,
// because every acquisition a little-core worker avoids is one fewer
// standby wait.
//
// Range scans follow the same discipline one level up: keys are
// hash-distributed, so every shard holds an interleaved slice of any
// key range. Store.Range visits one shard at a time (lock taken once
// per shard, held only while that shard's slice is collected) and
// merges the per-shard results into one ascending emission;
// MultiRange batches several ranges through a single pass, each shard
// lock taken once for the whole request set. Scans are the first op
// class here whose critical-section length is data-dependent — the
// long-holder case the ASL reorder window is designed to absorb.
//
// Store is safe for concurrent use by any number of workers; each
// worker must own its *core.Worker (they are per-goroutine, like the
// paper's __thread state).
//
// Value ownership follows the embedded-KV convention: Put retains the
// value slice by reference, so the caller must not modify it after
// the call (pass a copy to reuse a buffer), and Get returns the
// stored slice, which the caller must treat as read-only.
package shardedkv

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/prng"
)

// Engine is the per-shard storage interface. Implementations are NOT
// required to be concurrency-safe: the shard lock serialises all
// access, exactly as the slot locks do in the Kyoto-like engine.
type Engine interface {
	// Get reads k. The returned slice is the stored one: read-only
	// for the caller.
	Get(k uint64) ([]byte, bool)
	// Put stores k=v and reports whether a new key was inserted
	// (false = an existing key was replaced). v is retained by
	// reference; the caller must not modify it afterwards.
	Put(k uint64, v []byte) bool
	// Delete removes k and reports whether it was present.
	Delete(k uint64) bool
	// Len returns the number of live keys.
	Len() int
	// Range calls fn for each key in [lo, hi] in ascending key order
	// until fn returns false. Every engine returns the same ordered
	// view, whatever its internal layout: ordered structures walk,
	// the hash table collects and sorts, the LSM merges memtable and
	// runs with newest-wins shadowing.
	Range(lo, hi uint64, fn func(k uint64, v []byte) bool)
}

// KV is one key/value pair of a batched put.
type KV struct {
	Key   uint64
	Value []byte
}

// Config configures a Store.
type Config struct {
	// Shards is the shard count; 0 means 16.
	Shards int
	// NewEngine builds shard i's storage engine; nil means hash-table
	// engines (NewHashEngine).
	NewEngine func(shard int) Engine
	// NewLock builds one shard lock; nil means the paper's default
	// ASL stack (locks.FactoryASL). Use locks.Factory wrappers to
	// compare plain mutexes, MCS, etc. under identical sharding.
	NewLock locks.Factory
	// CSPad, if non-nil, runs once per engine operation while the
	// shard lock is held. Benchmarks on symmetric hosts use it with
	// workload.AsymmetryShim to emulate the paper's AMP regime, where
	// a little-core holder keeps the lock proportionally longer (see
	// DESIGN.md substitutions). Leave nil in production use.
	CSPad func(w *core.Worker)
}

// ShardStats is a snapshot of one shard's operation counters.
type ShardStats struct {
	Gets, Puts, Deletes uint64
	// Scans counts engine range invocations on this shard: one per
	// (Range, shard) and one per (MultiRange request, shard). Scans
	// are the data-dependent-length op class, so they are tallied
	// apart from the point counters (and excluded from Ops).
	Scans uint64
	// BatchLocks counts lock acquisitions made on behalf of batched
	// operations: one per (batch, touched shard), not one per key.
	BatchLocks uint64
}

// Ops returns the total point-operation count (scans excluded).
func (s ShardStats) Ops() uint64 { return s.Gets + s.Puts + s.Deletes }

// shard is one lock+engine pair. The trailing pad keeps adjacent
// shards' hot counters off each other's cache lines.
type shard struct {
	lock    locks.WLock
	eng     Engine
	gets    atomic.Uint64
	puts    atomic.Uint64
	deletes atomic.Uint64
	scans   atomic.Uint64
	batches atomic.Uint64
	_       [64]byte
}

// Store is the sharded KV service layer.
type Store struct {
	shards []shard
	csPad  func(w *core.Worker)
}

// New builds a store from cfg.
func New(cfg Config) *Store {
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.NewEngine == nil {
		cfg.NewEngine = func(int) Engine { return NewHashEngine(256) }
	}
	if cfg.NewLock == nil {
		cfg.NewLock = locks.FactoryASL()
	}
	s := &Store{shards: make([]shard, cfg.Shards), csPad: cfg.CSPad}
	for i := range s.shards {
		s.shards[i].lock = cfg.NewLock()
		s.shards[i].eng = cfg.NewEngine(i)
	}
	return s
}

// NumShards returns the shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// ShardOf maps a key to its shard index (splitmix64's finalizer, so
// adjacent keys spread across shards).
func (s *Store) ShardOf(k uint64) int {
	return int(prng.Mix64(k) % uint64(len(s.shards)))
}

// Get reads k on behalf of worker w.
func (s *Store) Get(w *core.Worker, k uint64) ([]byte, bool) {
	sh := &s.shards[s.ShardOf(k)]
	sh.lock.Acquire(w)
	v, ok := sh.eng.Get(k)
	s.pad(w)
	sh.lock.Release(w)
	sh.gets.Add(1)
	return v, ok
}

// pad runs the configured critical-section padding, if any.
func (s *Store) pad(w *core.Worker) {
	if s.csPad != nil {
		s.csPad(w)
	}
}

// Put stores k=v on behalf of worker w; reports insert-vs-replace.
func (s *Store) Put(w *core.Worker, k uint64, v []byte) bool {
	sh := &s.shards[s.ShardOf(k)]
	sh.lock.Acquire(w)
	inserted := sh.eng.Put(k, v)
	s.pad(w)
	sh.lock.Release(w)
	sh.puts.Add(1)
	return inserted
}

// Delete removes k on behalf of worker w; reports presence.
func (s *Store) Delete(w *core.Worker, k uint64) bool {
	sh := &s.shards[s.ShardOf(k)]
	sh.lock.Acquire(w)
	present := sh.eng.Delete(k)
	s.pad(w)
	sh.lock.Release(w)
	sh.deletes.Add(1)
	return present
}

// Len returns the total live-key count, locking one shard at a time
// (the answer is a consistent per-shard sum, like Kyoto's count).
func (s *Store) Len(w *core.Worker) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock.Acquire(w)
		n += sh.eng.Len()
		sh.lock.Release(w)
	}
	return n
}

// Range calls fn for every key in [lo, hi] in ascending key order.
// Keys are hash-distributed, so each shard holds an interleaved slice
// of the range; Range visits one shard at a time — each shard lock
// taken exactly once, held only while that shard's slice is collected
// — then merges the per-shard results in key order before emitting.
// The view is per-shard consistent, not globally atomic: a writer may
// land on an unvisited shard mid-scan, the usual contract for sharded
// scans. fn returning false stops the emission (the collection cost is
// already paid).
func (s *Store) Range(w *core.Worker, lo, hi uint64, fn func(k uint64, v []byte) bool) {
	lists := make([][]KV, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		sh.lock.Acquire(w)
		sh.eng.Range(lo, hi, func(k uint64, v []byte) bool {
			lists[i] = append(lists[i], KV{Key: k, Value: v})
			return true
		})
		s.pad(w)
		sh.lock.Release(w)
		sh.scans.Add(1)
	}
	for _, kv := range mergeKV(lists) {
		if !fn(kv.Key, kv.Value) {
			return
		}
	}
}

// RangeReq is one [Lo, Hi] scan of a batched MultiRange.
type RangeReq struct{ Lo, Hi uint64 }

// batchRanger is an optional Engine extension for engines whose Range
// pays a full-structure walk regardless of span (the hash table):
// MultiRange hands them the whole request batch so one walk — not one
// per request — runs under each shard lock. BatchRange must emit each
// request's in-range pairs in ascending key order.
type batchRanger interface {
	BatchRange(reqs []RangeReq, emit func(req int, k uint64, v []byte))
}

// MultiRange executes all range requests in one pass over the shards,
// grouped by shard like MultiGet: each shard's lock is taken exactly
// once, and while it is held every request collects that shard's slice
// of its range. out[i] is request i's result in ascending key order.
// Requests see the same per-shard-consistent view as Range, and all
// requests see each shard at the same instant (they share the lock
// take).
func (s *Store) MultiRange(w *core.Worker, reqs []RangeReq) [][]KV {
	out := make([][]KV, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	parts := make([][][]KV, len(reqs)) // parts[request][shard]
	for i := range parts {
		parts[i] = make([][]KV, len(s.shards))
	}
	for si := range s.shards {
		sh := &s.shards[si]
		sh.lock.Acquire(w)
		if br, ok := sh.eng.(batchRanger); ok {
			// One engine walk serves the whole batch: one pad, one
			// engine operation.
			br.BatchRange(reqs, func(ri int, k uint64, v []byte) {
				parts[ri][si] = append(parts[ri][si], KV{Key: k, Value: v})
			})
			s.pad(w)
		} else {
			for ri, r := range reqs {
				sh.eng.Range(r.Lo, r.Hi, func(k uint64, v []byte) bool {
					parts[ri][si] = append(parts[ri][si], KV{Key: k, Value: v})
					return true
				})
				s.pad(w)
			}
		}
		sh.lock.Release(w)
		sh.scans.Add(uint64(len(reqs)))
		sh.batches.Add(1)
	}
	for ri := range reqs {
		out[ri] = mergeKV(parts[ri])
	}
	return out
}

// mergeKV merges per-shard sorted KV lists into one ascending list.
// Shard counts are small, so a select-the-min pass beats heap
// bookkeeping.
func mergeKV(lists [][]KV) []KV {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]KV, 0, total)
	idx := make([]int, len(lists))
	for len(out) < total {
		best := -1
		for i, l := range lists {
			if idx[i] < len(l) && (best < 0 || l[idx[i]].Key < lists[best][idx[best]].Key) {
				best = i
			}
		}
		out = append(out, lists[best][idx[best]])
		idx[best]++
	}
	return out
}

// byShard groups batch indices by shard: order[g][j] is an index into
// the caller's batch slice. Groups are visited in ascending shard
// order; within a group, batch order is preserved (so later puts of a
// duplicate key win, matching sequential semantics).
func (s *Store) byShard(n int, shardOf func(i int) int) [][]int {
	counts := make([]int, len(s.shards))
	home := make([]int, n)
	for i := 0; i < n; i++ {
		home[i] = shardOf(i)
		counts[home[i]]++
	}
	groups := make([][]int, len(s.shards))
	for sh, c := range counts {
		if c > 0 {
			groups[sh] = make([]int, 0, c)
		}
	}
	for i := 0; i < n; i++ {
		groups[home[i]] = append(groups[home[i]], i)
	}
	return groups
}

// MultiGet reads all keys in one pass, taking each touched shard's
// lock exactly once. vals[i] and ok[i] correspond to keys[i].
func (s *Store) MultiGet(w *core.Worker, keys []uint64) (vals [][]byte, ok []bool) {
	vals = make([][]byte, len(keys))
	ok = make([]bool, len(keys))
	groups := s.byShard(len(keys), func(i int) int { return s.ShardOf(keys[i]) })
	for shIdx, g := range groups {
		if len(g) == 0 {
			continue
		}
		sh := &s.shards[shIdx]
		sh.lock.Acquire(w)
		for _, i := range g {
			vals[i], ok[i] = sh.eng.Get(keys[i])
			s.pad(w)
		}
		sh.lock.Release(w)
		sh.gets.Add(uint64(len(g)))
		sh.batches.Add(1)
	}
	return vals, ok
}

// MultiPut writes all pairs in one pass, taking each touched shard's
// lock exactly once. Returns the number of newly inserted keys.
// Duplicate keys within the batch apply in batch order (last wins).
func (s *Store) MultiPut(w *core.Worker, kvs []KV) (inserted int) {
	groups := s.byShard(len(kvs), func(i int) int { return s.ShardOf(kvs[i].Key) })
	for shIdx, g := range groups {
		if len(g) == 0 {
			continue
		}
		sh := &s.shards[shIdx]
		sh.lock.Acquire(w)
		for _, i := range g {
			if sh.eng.Put(kvs[i].Key, kvs[i].Value) {
				inserted++
			}
			s.pad(w)
		}
		sh.lock.Release(w)
		sh.puts.Add(uint64(len(g)))
		sh.batches.Add(1)
	}
	return inserted
}

// Stats snapshots every shard's counters. The snapshot is not atomic
// across shards (counters advance concurrently), which is fine for the
// throughput reporting it feeds.
func (s *Store) Stats() []ShardStats {
	out := make([]ShardStats, len(s.shards))
	for i := range s.shards {
		sh := &s.shards[i]
		out[i] = ShardStats{
			Gets:       sh.gets.Load(),
			Puts:       sh.puts.Load(),
			Deletes:    sh.deletes.Load(),
			Scans:      sh.scans.Load(),
			BatchLocks: sh.batches.Load(),
		}
	}
	return out
}

// AggregateStats sums Stats across shards.
func (s *Store) AggregateStats() ShardStats {
	var agg ShardStats
	for _, st := range s.Stats() {
		agg.Gets += st.Gets
		agg.Puts += st.Puts
		agg.Deletes += st.Deletes
		agg.Scans += st.Scans
		agg.BatchLocks += st.BatchLocks
	}
	return agg
}

// String summarises the shard layout.
func (s *Store) String() string {
	return fmt.Sprintf("shardedkv.Store{shards: %d}", len(s.shards))
}
