package shardedkv

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/core"
)

// Crash-point recovery suite: every test drives a durable store (or
// its pipeline front end), kills it at a chosen point — clean Close,
// kill -9 via CrashDrop, mid-checkpoint debris, mid-recovery debris,
// torn or corrupt segment tails — reopens the same directory, and
// demands the replayed store answer exactly like the sequential model
// that watched the workload. CrashDrop mirrors a process kill: the
// user-space append buffers vanish, nothing gets a parting fsync, so
// only what the group commits already pushed down survives.

// seqPut writes keys [0, n) at version ver and records, per shard, the
// last key routed to it (the key whose record sits at that shard's
// segment tail).
func seqPut(st *Store, w *core.Worker, n uint64, ver uint64, lastPerShard map[*shard]uint64) {
	for k := uint64(0); k < n; k++ {
		st.Put(w, k, verValue(k, ver))
		if lastPerShard != nil {
			lastPerShard[st.smap.Load().locate(hashOf(k))] = k
		}
	}
}

// newestSegment returns the path of the highest-indexed segment file
// in a shard's log directory (hex-padded names sort lexically).
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	sort.Strings(segs)
	return segs[len(segs)-1]
}

// durCfg builds a store config over dir with every write sync-waited,
// so the model is exact after a crash with no Flush: each op was
// durable before it returned.
func durCfg(dir string, eng func(int) Engine) Config {
	return Config{
		Shards:    4,
		NewEngine: eng,
		Reshard:   manualReshard(),
		Durability: &DurabilityConfig{
			Dir:         dir,
			Interactive: SyncWait,
			Bulk:        SyncWait,
		},
	}
}

// TestDurableTornTailTruncates appends garbage past every shard's last
// durable record — the torn tail a crash mid-write leaves — and
// demands recovery truncate it: reopen must not error, and every
// record written before the kill must survive.
func TestDurableTornTailTruncates(t *testing.T) {
	const n = 200
	dir := t.TempDir()
	st := New(durCfg(dir, nil))
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	shards := st.smap.Load().shards
	seqPut(st, w, n, 1, nil)
	st.CrashDrop()
	for _, sh := range shards {
		seg := newestSegment(t, sh.wal.Dir())
		f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("torn-tail-garbage\x00\xff\x13")); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	st2 := New(durCfg(dir, nil))
	for k := uint64(0); k < n; k++ {
		v, ok := st2.Get(w, k)
		if !ok || !bytes.Equal(v, verValue(k, 1)) {
			t.Errorf("Get(%d) after torn-tail recovery = %x,%v; want version 1", k, v, ok)
		}
	}
	st2.Close(w)
}

// TestDurableCorruptChecksumTruncates flips a byte inside one shard's
// final record: its checksum must fail and replay must cut the stream
// exactly there — that one key lost, every other key intact, no panic.
func TestDurableCorruptChecksumTruncates(t *testing.T) {
	const n = 200
	dir := t.TempDir()
	st := New(durCfg(dir, nil))
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	lastPerShard := map[*shard]uint64{}
	seqPut(st, w, n, 1, lastPerShard)
	st.CrashDrop()
	// Corrupt exactly one shard's tail record: the last key written to
	// the shard that owns key 0.
	victimShard := st.smap.Load().locate(hashOf(0))
	victim := lastPerShard[victimShard]
	seg := newestSegment(t, victimShard.wal.Dir())
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := New(durCfg(dir, nil))
	for k := uint64(0); k < n; k++ {
		v, ok := st2.Get(w, k)
		if k == victim {
			if ok {
				t.Errorf("Get(%d) = %x: the corrupted record replayed anyway", k, v)
			}
			continue
		}
		if !ok || !bytes.Equal(v, verValue(k, 1)) {
			t.Errorf("Get(%d) after corrupt-tail recovery = %x,%v; want version 1", k, v, ok)
		}
	}
	st2.Close(w)
}

// TestDurableCrashMidCheckpoint covers the two checkpoint crash
// windows: after a completed checkpoint plus more appends (recovery
// must replay checkpoint prefix THEN segment tail, preserving per-key
// order across the boundary), and a checkpoint killed before its
// rename (only a *.tmp left behind, which replay must ignore).
func TestDurableCrashMidCheckpoint(t *testing.T) {
	const n = 150
	dir := t.TempDir()
	st := New(durCfg(dir, nil))
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	seqPut(st, w, n, 1, nil)
	if err := st.Checkpoint(w); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	shards := st.smap.Load().shards
	for _, sh := range shards {
		if cks, _ := filepath.Glob(filepath.Join(sh.wal.Dir(), "ckpt-*.ck")); len(cks) == 0 {
			t.Fatalf("shard %d has no checkpoint file after Checkpoint", sh.id)
		}
	}
	// Overwrite the upper two thirds after the checkpoint so the replay
	// boundary sits inside live keys.
	for k := uint64(n / 3); k < n; k++ {
		st.Put(w, k, verValue(k, 2))
	}
	st.CrashDrop()
	// Debris of a second checkpoint killed before its rename.
	tmp := filepath.Join(shards[0].wal.Dir(), "ckpt-00000000000000ff.ck.tmp")
	if err := os.WriteFile(tmp, []byte("half-written checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := New(durCfg(dir, nil))
	for k := uint64(0); k < n; k++ {
		want := verValue(k, 1)
		if k >= n/3 {
			want = verValue(k, 2)
		}
		if v, ok := st2.Get(w, k); !ok || !bytes.Equal(v, want) {
			t.Errorf("Get(%d) across checkpoint boundary = %x,%v; want %x", k, v, ok, want)
		}
	}
	st2.Close(w)
}

// TestDurableCrashMidRecovery simulates a recovery that died before
// flipping CURRENT: the next generation's directory exists with debris
// in it, but CURRENT still names the old one. Reopening must recover
// from CURRENT, absorb or discard the debris, and a further
// close/reopen cycle must still verify — the debris cannot poison the
// durable history.
func TestDurableCrashMidRecovery(t *testing.T) {
	const n = 120
	dir := t.TempDir()
	st := New(durCfg(dir, nil))
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	seqPut(st, w, n, 1, nil)
	st.Close(w)
	gen, err := readCurrentGen(dir)
	if err != nil || gen == 0 {
		t.Fatalf("readCurrentGen = %d, %v", gen, err)
	}
	// Debris where the next recovery will open its logs.
	debris := shardWalDir(genDirName(dir, gen+1), 0)
	if err := os.MkdirAll(debris, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(debris, "seg-0000000000000001.wal"), []byte("crashed mid-recovery"), 0o644); err != nil {
		t.Fatal(err)
	}
	check := func(st *Store) {
		t.Helper()
		for k := uint64(0); k < n; k++ {
			if v, ok := st.Get(w, k); !ok || !bytes.Equal(v, verValue(k, 1)) {
				t.Errorf("Get(%d) = %x,%v; want version 1", k, v, ok)
			}
		}
	}
	st2 := New(durCfg(dir, nil))
	check(st2)
	st2.Close(w)
	st3 := New(durCfg(dir, nil))
	check(st3)
	st3.Close(w)
	// Exactly one generation directory may remain live.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	gens := 0
	for _, e := range ents {
		if e.IsDir() {
			gens++
		}
	}
	if gens != 1 {
		t.Errorf("%d generation directories left after recovery; want 1", gens)
	}
}
