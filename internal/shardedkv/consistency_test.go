package shardedkv

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/prng"
)

// newTestWorker returns a big-class worker (class is irrelevant for
// single-threaded tests; big avoids standby waits entirely).
func newTestWorker() *core.Worker {
	return core.NewWorker(core.WorkerConfig{Class: core.Big})
}

// value derives a deterministic value for key k at version ver.
func value(k uint64, ver int) []byte {
	return []byte(fmt.Sprintf("v%d-%x", ver, k))
}

// TestCrossEngineConsistency drives the same seeded op sequence
// through a store on each engine and demands identical results op by
// op and identical final state.
func TestCrossEngineConsistency(t *testing.T) {
	const (
		numShards = 8
		keyspace  = 1 << 10
		ops       = 20_000
	)
	specs := AllEngines()
	stores := make([]*Store, len(specs))
	for i, spec := range specs {
		stores[i] = New(Config{Shards: numShards, NewEngine: spec.New})
	}
	w := newTestWorker()
	rng := prng.NewSplitMix64(42)
	ver := 0
	for op := 0; op < ops; op++ {
		k := rng.Uint64() % keyspace
		switch rng.Uint64() % 4 {
		case 0: // put
			ver++
			v := value(k, ver)
			var want bool
			for i, st := range stores {
				got := st.Put(w, k, v)
				if i == 0 {
					want = got
				} else if got != want {
					t.Fatalf("op %d: Put(%d) inserted=%v on %s, %v on %s",
						op, k, want, specs[0].Name, got, specs[i].Name)
				}
			}
		case 1: // get
			var wantV []byte
			var wantOK bool
			for i, st := range stores {
				v, ok := st.Get(w, k)
				if i == 0 {
					wantV, wantOK = v, ok
				} else if ok != wantOK || !bytes.Equal(v, wantV) {
					t.Fatalf("op %d: Get(%d) = (%q,%v) on %s, (%q,%v) on %s",
						op, k, wantV, wantOK, specs[0].Name, v, ok, specs[i].Name)
				}
			}
		case 2: // delete
			var want bool
			for i, st := range stores {
				got := st.Delete(w, k)
				if i == 0 {
					want = got
				} else if got != want {
					t.Fatalf("op %d: Delete(%d) present=%v on %s, %v on %s",
						op, k, want, specs[0].Name, got, specs[i].Name)
				}
			}
		default: // batched puts + batched gets
			n := int(rng.Uint64()%8) + 1
			kvs := make([]KV, n)
			keys := make([]uint64, n)
			for j := range kvs {
				ver++
				bk := rng.Uint64() % keyspace
				kvs[j] = KV{Key: bk, Value: value(bk, ver)}
				keys[j] = bk
			}
			var wantIns int
			for i, st := range stores {
				ins := st.MultiPut(w, kvs)
				if i == 0 {
					wantIns = ins
				} else if ins != wantIns {
					t.Fatalf("op %d: MultiPut inserted %d on %s, %d on %s",
						op, wantIns, specs[0].Name, ins, specs[i].Name)
				}
			}
			var wantVals [][]byte
			var wantOKs []bool
			for i, st := range stores {
				vals, oks := st.MultiGet(w, keys)
				if i == 0 {
					wantVals, wantOKs = vals, oks
					continue
				}
				for j := range keys {
					if oks[j] != wantOKs[j] || !bytes.Equal(vals[j], wantVals[j]) {
						t.Fatalf("op %d: MultiGet key %d mismatch between %s and %s",
							op, keys[j], specs[0].Name, specs[i].Name)
					}
				}
			}
		}
	}
	// Final state: identical Len and identical contents over the whole
	// keyspace.
	wantLen := stores[0].Len(w)
	for i := 1; i < len(stores); i++ {
		if l := stores[i].Len(w); l != wantLen {
			t.Fatalf("final Len: %d on %s, %d on %s", wantLen, specs[0].Name, l, specs[i].Name)
		}
	}
	live := 0
	for k := uint64(0); k < keyspace; k++ {
		wantV, wantOK := stores[0].Get(w, k)
		if wantOK {
			live++
		}
		for i := 1; i < len(stores); i++ {
			v, ok := stores[i].Get(w, k)
			if ok != wantOK || !bytes.Equal(v, wantV) {
				t.Fatalf("final Get(%d): (%q,%v) on %s, (%q,%v) on %s",
					k, wantV, wantOK, specs[0].Name, v, ok, specs[i].Name)
			}
		}
	}
	if live != wantLen {
		t.Fatalf("final Len %d does not match live key count %d", wantLen, live)
	}
}

// TestMultiPutDuplicateKeysLastWins pins batch-order semantics for
// duplicate keys within one batch.
func TestMultiPutDuplicateKeysLastWins(t *testing.T) {
	for _, spec := range AllEngines() {
		st := New(Config{Shards: 4, NewEngine: spec.New})
		w := newTestWorker()
		ins := st.MultiPut(w, []KV{
			{Key: 7, Value: []byte("first")},
			{Key: 7, Value: []byte("second")},
		})
		if ins != 1 {
			t.Errorf("%s: duplicate-key batch inserted %d keys, want 1", spec.Name, ins)
		}
		v, ok := st.Get(w, 7)
		if !ok || string(v) != "second" {
			t.Errorf("%s: Get(7) = (%q, %v), want last write to win", spec.Name, v, ok)
		}
	}
}

// TestMultiGetAlignment checks result slices align with the request
// and hit every shard at most once per batch.
func TestMultiGetAlignment(t *testing.T) {
	st := New(Config{Shards: 4, NewLock: locks.FactoryMCS()})
	w := newTestWorker()
	for k := uint64(0); k < 64; k += 2 { // even keys present
		st.Put(w, k, value(k, 0))
	}
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i)
	}
	before := st.AggregateStats().BatchLocks
	vals, oks := st.MultiGet(w, keys)
	if len(vals) != len(keys) || len(oks) != len(keys) {
		t.Fatalf("result length mismatch: %d vals, %d oks, %d keys", len(vals), len(oks), len(keys))
	}
	for i, k := range keys {
		wantOK := k%2 == 0
		if oks[i] != wantOK {
			t.Fatalf("key %d: ok=%v, want %v", k, oks[i], wantOK)
		}
		if wantOK && !bytes.Equal(vals[i], value(k, 0)) {
			t.Fatalf("key %d: wrong value %q", k, vals[i])
		}
	}
	batches := st.AggregateStats().BatchLocks - before
	if batches > uint64(st.NumShards()) {
		t.Fatalf("batch took %d shard-lock acquisitions, want <= %d", batches, st.NumShards())
	}
}

// TestShardOfSpreads sanity-checks the shard mapping: sequential keys
// must not pile onto one shard.
func TestShardOfSpreads(t *testing.T) {
	st := New(Config{Shards: 16})
	counts := make([]int, st.NumShards())
	const n = 16_000
	for k := uint64(0); k < n; k++ {
		counts[st.ShardOf(k)]++
	}
	for i, c := range counts {
		if c < n/st.NumShards()/2 || c > n/st.NumShards()*2 {
			t.Errorf("shard %d holds %d of %d sequential keys; mapping too skewed", i, c, n)
		}
	}
}

// TestStatsCount checks the per-shard counters add up.
func TestStatsCount(t *testing.T) {
	st := New(Config{Shards: 4})
	w := newTestWorker()
	for k := uint64(0); k < 100; k++ {
		st.Put(w, k, []byte("x"))
	}
	for k := uint64(0); k < 50; k++ {
		st.Get(w, k)
	}
	for k := uint64(0); k < 25; k++ {
		st.Delete(w, k)
	}
	agg := st.AggregateStats()
	if agg.Puts != 100 || agg.Gets != 50 || agg.Deletes != 25 {
		t.Fatalf("aggregate = %+v, want 100 puts / 50 gets / 25 deletes", agg)
	}
	if agg.Ops() != 175 {
		t.Fatalf("Ops() = %d, want 175", agg.Ops())
	}
	if got := st.Len(w); got != 75 {
		t.Fatalf("Len = %d, want 75", got)
	}
}
