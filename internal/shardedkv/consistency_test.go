package shardedkv

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/prng"
)

// newTestWorker returns a big-class worker (class is irrelevant for
// single-threaded tests; big avoids standby waits entirely).
func newTestWorker() *core.Worker {
	return core.NewWorker(core.WorkerConfig{Class: core.Big})
}

// value derives a deterministic value for key k at version ver.
func value(k uint64, ver int) []byte {
	return []byte(fmt.Sprintf("v%d-%x", ver, k))
}

// collectRange gathers st.Range output and verifies strict ascending
// key order as it goes.
func collectRange(t *testing.T, st *Store, w *core.Worker, lo, hi uint64) []Pair {
	t.Helper()
	var out []Pair
	st.Range(w, lo, hi, func(k uint64, v []byte) bool {
		if k < lo || k > hi {
			t.Fatalf("Range[%d,%d] emitted out-of-range key %d", lo, hi, k)
		}
		if len(out) > 0 && k <= out[len(out)-1].Key {
			t.Fatalf("Range[%d,%d] emitted %d after %d: out of order", lo, hi, k, out[len(out)-1].Key)
		}
		out = append(out, Pair{Key: k, Value: v})
		return true
	})
	return out
}

// sameKVs compares two ordered KV lists.
func sameKVs(a, b []Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// TestCrossEngineConsistency drives the same seeded op sequence
// through a store on each engine and demands identical results op by
// op and identical final state.
func TestCrossEngineConsistency(t *testing.T) {
	const (
		numShards = 8
		keyspace  = 1 << 10
		ops       = 20_000
	)
	specs := AllEngines()
	stores := make([]*Store, len(specs))
	for i, spec := range specs {
		stores[i] = New(Config{Shards: numShards, NewEngine: spec.New})
	}
	w := newTestWorker()
	rng := prng.NewSplitMix64(42)
	ver := 0
	for op := 0; op < ops; op++ {
		k := rng.Uint64() % keyspace
		switch rng.Uint64() % 5 {
		case 0: // put
			ver++
			v := value(k, ver)
			var want bool
			for i, st := range stores {
				got, _ := st.Put(w, k, v)
				if i == 0 {
					want = got
				} else if got != want {
					t.Fatalf("op %d: Put(%d) inserted=%v on %s, %v on %s",
						op, k, want, specs[0].Name, got, specs[i].Name)
				}
			}
		case 1: // get
			var wantV []byte
			var wantOK bool
			for i, st := range stores {
				v, ok := st.Get(w, k)
				if i == 0 {
					wantV, wantOK = v, ok
				} else if ok != wantOK || !bytes.Equal(v, wantV) {
					t.Fatalf("op %d: Get(%d) = (%q,%v) on %s, (%q,%v) on %s",
						op, k, wantV, wantOK, specs[0].Name, v, ok, specs[i].Name)
				}
			}
		case 2: // delete
			var want bool
			for i, st := range stores {
				got, _ := st.Delete(w, k)
				if i == 0 {
					want = got
				} else if got != want {
					t.Fatalf("op %d: Delete(%d) present=%v on %s, %v on %s",
						op, k, want, specs[0].Name, got, specs[i].Name)
				}
			}
		case 3: // range scan
			lo := k
			hi := lo + rng.Uint64()%128
			var want []Pair
			for i, st := range stores {
				got := collectRange(t, st, w, lo, hi)
				if i == 0 {
					want = got
				} else if !sameKVs(got, want) {
					t.Fatalf("op %d: Range[%d,%d] yields %d pairs on %s, %d on %s",
						op, lo, hi, len(want), specs[0].Name, len(got), specs[i].Name)
				}
			}
		default: // batched puts + batched gets
			n := int(rng.Uint64()%8) + 1
			kvs := make([]Pair, n)
			keys := make([]uint64, n)
			for j := range kvs {
				ver++
				bk := rng.Uint64() % keyspace
				kvs[j] = Pair{Key: bk, Value: value(bk, ver)}
				keys[j] = bk
			}
			var wantIns int
			for i, st := range stores {
				ins, _ := st.MultiPut(w, kvs)
				if i == 0 {
					wantIns = ins
				} else if ins != wantIns {
					t.Fatalf("op %d: MultiPut inserted %d on %s, %d on %s",
						op, wantIns, specs[0].Name, ins, specs[i].Name)
				}
			}
			var wantVals [][]byte
			var wantOKs []bool
			for i, st := range stores {
				vals, oks := st.MultiGet(w, keys)
				if i == 0 {
					wantVals, wantOKs = vals, oks
					continue
				}
				for j := range keys {
					if oks[j] != wantOKs[j] || !bytes.Equal(vals[j], wantVals[j]) {
						t.Fatalf("op %d: MultiGet key %d mismatch between %s and %s",
							op, keys[j], specs[0].Name, specs[i].Name)
					}
				}
			}
		}
	}
	// Final state: identical Len and identical contents over the whole
	// keyspace.
	wantLen := stores[0].Len(w)
	for i := 1; i < len(stores); i++ {
		if l := stores[i].Len(w); l != wantLen {
			t.Fatalf("final Len: %d on %s, %d on %s", wantLen, specs[0].Name, l, specs[i].Name)
		}
	}
	live := 0
	for k := uint64(0); k < keyspace; k++ {
		wantV, wantOK := stores[0].Get(w, k)
		if wantOK {
			live++
		}
		for i := 1; i < len(stores); i++ {
			v, ok := stores[i].Get(w, k)
			if ok != wantOK || !bytes.Equal(v, wantV) {
				t.Fatalf("final Get(%d): (%q,%v) on %s, (%q,%v) on %s",
					k, wantV, wantOK, specs[0].Name, v, ok, specs[i].Name)
			}
		}
	}
	if live != wantLen {
		t.Fatalf("final Len %d does not match live key count %d", wantLen, live)
	}
	// Final ordered view: a full-range scan on every engine must agree
	// pair-for-pair and cover exactly the live keys.
	wantScan := collectRange(t, stores[0], w, 0, ^uint64(0))
	if len(wantScan) != wantLen {
		t.Fatalf("full Range yielded %d pairs, Len says %d", len(wantScan), wantLen)
	}
	for i := 1; i < len(stores); i++ {
		if got := collectRange(t, stores[i], w, 0, ^uint64(0)); !sameKVs(got, wantScan) {
			t.Fatalf("final full Range differs between %s and %s", specs[0].Name, specs[i].Name)
		}
	}
}

// TestRangeConsistencyAfterDeletes is the shared ordered-Range check:
// interleaved puts and deletes (heavy enough to push the LSM through
// freezes and tombstone-dropping merges), then every engine must
// return identical ordered results for full and partial ranges.
func TestRangeConsistencyAfterDeletes(t *testing.T) {
	const keyspace = 1 << 9
	specs := AllEngines()
	stores := make([]*Store, len(specs))
	for i, spec := range specs {
		newEng := spec.New
		if spec.Name == "lsm" {
			// Small LSM memtables force the delete/range paths through
			// frozen runs and tombstone-dropping merges, not just the
			// memtable.
			newEng = func(sh int) Engine { return NewLSMEngine(uint64(sh)+1, 1<<9) }
		}
		stores[i] = New(Config{Shards: 8, NewEngine: newEng})
	}
	w := newTestWorker()
	rng := prng.NewSplitMix64(7)
	ref := map[uint64][]byte{}
	for op := 0; op < 30_000; op++ {
		k := rng.Uint64() % keyspace
		if rng.Uint64()%3 == 0 {
			for _, st := range stores {
				st.Delete(w, k)
			}
			delete(ref, k)
		} else {
			v := value(k, op)
			for _, st := range stores {
				st.Put(w, k, v)
			}
			ref[k] = v
		}
	}
	for _, span := range []struct{ lo, hi uint64 }{
		{0, ^uint64(0)},
		{0, keyspace / 2},
		{keyspace / 4, keyspace/4 + 63},
		{keyspace, 2 * keyspace}, // empty
	} {
		var want []Pair
		for i, st := range stores {
			got := collectRange(t, st, w, span.lo, span.hi)
			for _, kv := range got {
				if refV, ok := ref[kv.Key]; !ok || !bytes.Equal(refV, kv.Value) {
					t.Fatalf("%s: Range[%d,%d] key %d disagrees with reference",
						specs[i].Name, span.lo, span.hi, kv.Key)
				}
			}
			if i == 0 {
				want = got
				inRange := 0
				for k := range ref {
					if k >= span.lo && k <= span.hi {
						inRange++
					}
				}
				if len(want) != inRange {
					t.Fatalf("Range[%d,%d] yielded %d pairs, reference holds %d",
						span.lo, span.hi, len(want), inRange)
				}
			} else if !sameKVs(got, want) {
				t.Fatalf("Range[%d,%d] differs between %s and %s",
					span.lo, span.hi, specs[0].Name, specs[i].Name)
			}
		}
	}
}

// TestMultiRangeMatchesSingleRanges pins MultiRange semantics: each
// request's result equals the equivalent standalone Range, and the
// whole batch takes each shard lock once.
func TestMultiRangeMatchesSingleRanges(t *testing.T) {
	for _, spec := range AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			st := New(Config{Shards: 4, NewEngine: spec.New})
			w := newTestWorker()
			for k := uint64(0); k < 512; k += 3 {
				st.Put(w, k, value(k, 1))
			}
			reqs := []RangeReq{
				{Lo: 0, Hi: 100},
				{Lo: 50, Hi: 200},   // overlapping
				{Lo: 400, Hi: 380},  // inverted: empty
				{Lo: 900, Hi: 1000}, // beyond data: empty
			}
			before := st.AggregateStats()
			got := st.MultiRange(w, reqs)
			after := st.AggregateStats()
			if after.BatchLocks-before.BatchLocks != uint64(st.NumShards()) {
				t.Fatalf("MultiRange took %d batch locks, want one per shard (%d)",
					after.BatchLocks-before.BatchLocks, st.NumShards())
			}
			if after.Scans-before.Scans != uint64(st.NumShards()*len(reqs)) {
				t.Fatalf("MultiRange counted %d scans, want %d",
					after.Scans-before.Scans, st.NumShards()*len(reqs))
			}
			if len(got) != len(reqs) {
				t.Fatalf("MultiRange returned %d results for %d requests", len(got), len(reqs))
			}
			for i, r := range reqs {
				want := collectRange(t, st, w, r.Lo, r.Hi)
				if !sameKVs(got[i], want) {
					t.Fatalf("request %d [%d,%d]: MultiRange and Range disagree (%d vs %d pairs)",
						i, r.Lo, r.Hi, len(got[i]), len(want))
				}
			}
			if len(got[2]) != 0 || len(got[3]) != 0 {
				t.Fatalf("empty-span requests returned %d and %d pairs", len(got[2]), len(got[3]))
			}
		})
	}
}

// TestBatchEdgeSemantics pins the edge cases of the batched ops:
// duplicate keys within one MultiGet, and empty batches of every kind.
func TestBatchEdgeSemantics(t *testing.T) {
	for _, spec := range AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			st := New(Config{Shards: 4, NewEngine: spec.New})
			w := newTestWorker()
			st.Put(w, 9, []byte("nine"))
			// Duplicate keys in one MultiGet: every occurrence answers.
			vals, oks := st.MultiGet(w, []uint64{9, 9, 1, 9})
			for _, i := range []int{0, 1, 3} {
				if !oks[i] || string(vals[i]) != "nine" {
					t.Fatalf("duplicate MultiGet slot %d = (%q, %v)", i, vals[i], oks[i])
				}
			}
			if oks[2] {
				t.Fatal("absent key reported present")
			}
			// Duplicate put+delete... a put batch where the same key is
			// inserted twice counts one insert (exercised in
			// TestMultiPutDuplicateKeysLastWins); empty batches are
			// no-ops that return aligned empties.
			if vals, oks := st.MultiGet(w, nil); len(vals) != 0 || len(oks) != 0 {
				t.Fatal("empty MultiGet must return empty slices")
			}
			if ins, _ := st.MultiPut(w, nil); ins != 0 {
				t.Fatalf("empty MultiPut inserted %d", ins)
			}
			if out := st.MultiRange(w, nil); len(out) != 0 {
				t.Fatal("empty MultiRange must return an empty result set")
			}
			before := st.AggregateStats()
			st.MultiGet(w, []uint64{})
			st.MultiPut(w, []Pair{})
			st.MultiRange(w, []RangeReq{})
			after := st.AggregateStats()
			if after.BatchLocks != before.BatchLocks {
				t.Fatalf("empty batches took %d shard locks", after.BatchLocks-before.BatchLocks)
			}
		})
	}
}

// TestMultiPutDuplicateKeysLastWins pins batch-order semantics for
// duplicate keys within one batch.
func TestMultiPutDuplicateKeysLastWins(t *testing.T) {
	for _, spec := range AllEngines() {
		st := New(Config{Shards: 4, NewEngine: spec.New})
		w := newTestWorker()
		ins, _ := st.MultiPut(w, []Pair{
			{Key: 7, Value: []byte("first")},
			{Key: 7, Value: []byte("second")},
		})
		if ins != 1 {
			t.Errorf("%s: duplicate-key batch inserted %d keys, want 1", spec.Name, ins)
		}
		v, ok := st.Get(w, 7)
		if !ok || string(v) != "second" {
			t.Errorf("%s: Get(7) = (%q, %v), want last write to win", spec.Name, v, ok)
		}
	}
}

// TestMultiGetAlignment checks result slices align with the request
// and hit every shard at most once per batch.
func TestMultiGetAlignment(t *testing.T) {
	st := New(Config{Shards: 4, NewLock: locks.FactoryMCS()})
	w := newTestWorker()
	for k := uint64(0); k < 64; k += 2 { // even keys present
		st.Put(w, k, value(k, 0))
	}
	keys := make([]uint64, 64)
	for i := range keys {
		keys[i] = uint64(i)
	}
	before := st.AggregateStats().BatchLocks
	vals, oks := st.MultiGet(w, keys)
	if len(vals) != len(keys) || len(oks) != len(keys) {
		t.Fatalf("result length mismatch: %d vals, %d oks, %d keys", len(vals), len(oks), len(keys))
	}
	for i, k := range keys {
		wantOK := k%2 == 0
		if oks[i] != wantOK {
			t.Fatalf("key %d: ok=%v, want %v", k, oks[i], wantOK)
		}
		if wantOK && !bytes.Equal(vals[i], value(k, 0)) {
			t.Fatalf("key %d: wrong value %q", k, vals[i])
		}
	}
	batches := st.AggregateStats().BatchLocks - before
	if batches > uint64(st.NumShards()) {
		t.Fatalf("batch took %d shard-lock acquisitions, want <= %d", batches, st.NumShards())
	}
}

// TestShardOfSpreads sanity-checks the shard mapping: sequential keys
// must not pile onto one shard.
func TestShardOfSpreads(t *testing.T) {
	st := New(Config{Shards: 16})
	counts := make([]int, st.NumShards())
	const n = 16_000
	for k := uint64(0); k < n; k++ {
		counts[st.ShardOf(k)]++
	}
	for i, c := range counts {
		if c < n/st.NumShards()/2 || c > n/st.NumShards()*2 {
			t.Errorf("shard %d holds %d of %d sequential keys; mapping too skewed", i, c, n)
		}
	}
}

// TestStatsCount checks the per-shard counters add up.
func TestStatsCount(t *testing.T) {
	st := New(Config{Shards: 4})
	w := newTestWorker()
	for k := uint64(0); k < 100; k++ {
		st.Put(w, k, []byte("x"))
	}
	for k := uint64(0); k < 50; k++ {
		st.Get(w, k)
	}
	for k := uint64(0); k < 25; k++ {
		st.Delete(w, k)
	}
	agg := st.AggregateStats()
	if agg.Puts != 100 || agg.Gets != 50 || agg.Deletes != 25 {
		t.Fatalf("aggregate = %+v, want 100 puts / 50 gets / 25 deletes", agg)
	}
	if agg.Ops() != 175 {
		t.Fatalf("Ops() = %d, want 175", agg.Ops())
	}
	if got := st.Len(w); got != 75 {
		t.Fatalf("Len = %d, want 75", got)
	}
}
