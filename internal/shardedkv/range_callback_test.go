package shardedkv

import (
	"testing"

	"repro/internal/core"
)

// These are regression tests for the collect-then-emit lock contract:
// Store.Range must hold each shard lock only while that shard's slice
// is COLLECTED and invoke the user callback strictly after release
// (MultiRange likewise must return with every lock released, on both
// its batchRanger and fallback paths). The shard locks are not
// reentrant, so a violation self-deadlocks instead of silently
// passing: the callbacks below re-enter the store on every shard.

// TestStoreRangeCallbackLockFree re-enters the store from within the
// Range callback on each engine (hashkv exercises the collect-and-sort
// path, the others the ordered walks).
func TestStoreRangeCallbackLockFree(t *testing.T) {
	for _, spec := range AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			st := New(Config{Shards: 4, NewEngine: spec.New})
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			for k := uint64(0); k < 64; k++ {
				st.Put(w, k, stressValue(k))
			}
			visited := 0
			st.Range(w, 0, 63, func(k uint64, v []byte) bool {
				checkStressValue(t, k, v)
				st.Get(w, k+1)                           // read on a neighbouring shard
				st.Put(w, 1_000+k, stressValue(1_000+k)) // write path too
				if k == 10 {
					// A nested scan from inside the callback takes
					// every shard lock again.
					st.Range(w, 20, 30, func(uint64, []byte) bool { return true })
				}
				visited++
				return true
			})
			if visited != 64 {
				t.Fatalf("visited %d keys, want 64", visited)
			}
		})
	}
}

// TestStoreMultiRangeReleasesLocks runs MultiRange (batchRanger path
// on hashkv, fallback path elsewhere) and immediately re-enters the
// store, proving no shard lock leaks out of the call.
func TestStoreMultiRangeReleasesLocks(t *testing.T) {
	for _, spec := range AllEngines() {
		t.Run(spec.Name, func(t *testing.T) {
			st := New(Config{Shards: 4, NewEngine: spec.New})
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			for k := uint64(0); k < 128; k++ {
				st.Put(w, k, stressValue(k))
			}
			res := st.MultiRange(w, []RangeReq{{Lo: 0, Hi: 31}, {Lo: 16, Hi: 63}})
			if len(res[0]) != 32 || len(res[1]) != 48 {
				t.Fatalf("MultiRange sizes = %d,%d; want 32,48", len(res[0]), len(res[1]))
			}
			for _, kv := range res[0] {
				st.Get(w, kv.Key) // every shard lock must be free again
			}
			if got := st.Len(w); got != 128 {
				t.Fatalf("Len = %d, want 128", got)
			}
		})
	}
}
