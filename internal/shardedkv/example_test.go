package shardedkv_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/shardedkv"
)

// ExampleStore shows the synchronous store: one worker, point ops,
// a batched read, and an ordered range scan.
func ExampleStore() {
	st := shardedkv.New(shardedkv.Config{Shards: 4})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})

	st.Put(w, 1, []byte("one"))
	st.Put(w, 2, []byte("two"))
	st.Put(w, 3, []byte("three"))
	st.Delete(w, 2)

	if v, ok := st.Get(w, 1); ok {
		fmt.Printf("get 1 = %s\n", v)
	}
	_, ok := st.MultiGet(w, []uint64{1, 2, 3})
	fmt.Printf("multiget found = %v\n", ok)

	st.Range(w, 0, 10, func(k uint64, v []byte) bool {
		fmt.Printf("range %d = %s\n", k, v)
		return true
	})
	// Output:
	// get 1 = one
	// multiget found = [true false true]
	// range 1 = one
	// range 3 = three
}

// ExampleStore_classOverride shows op-level class overrides: the same
// worker issues one op little-class (standing by within the reorder
// window at a contended ASL shard lock) and one big-class, via As
// views — the serving boundary's per-request classing.
func ExampleStore_classOverride() {
	st := shardedkv.New(shardedkv.Config{Shards: 2})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})

	st.As(core.Little).Put(w, 7, []byte("bulk write"))
	v, _ := st.As(core.Big).Get(w, 7)
	fmt.Printf("interactive read = %s\n", v)
	fmt.Printf("base class unchanged = %v\n", w.Class())
	// Output:
	// interactive read = bulk write
	// base class unchanged = big
}

// ExampleAsyncStore shows the combining pipeline: waited ops,
// fire-and-forget writes with Flush as the barrier, and combining
// stats proving batched execution.
func ExampleAsyncStore() {
	st := shardedkv.New(shardedkv.Config{Shards: 2})
	async := shardedkv.NewAsync(st, shardedkv.AsyncConfig{})
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})

	async.Put(w, 1, []byte("waited"))
	async.PutAsync(w, 2, []byte("fire-and-forget"))
	async.Flush(w) // write barrier: the PutAsync is applied after this

	if v, ok := async.Get(w, 2); ok {
		fmt.Printf("get 2 = %s\n", v)
	}
	total := uint64(0)
	for _, c := range async.CombineStats() {
		total += c.Combined
	}
	fmt.Printf("ops through the combiner = %d\n", total)
	async.Close(w)
	// Output:
	// get 2 = fire-and-forget
	// ops through the combiner = 3
}
