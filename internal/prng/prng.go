// Package prng provides small, fast, deterministic pseudo-random number
// generators for experiments. Every experiment in this repository is
// seeded explicitly so that simulator runs are reproducible bit-for-bit;
// the global math/rand source is never used.
package prng

import "math"

// SplitMix64 is the SplitMix64 generator of Steele, Lea and Flood. It is
// used both directly (for cheap per-thread streams) and to seed
// Xoshiro256. The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next 64-bit value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return Mix64(s.state)
}

// Mix64 is SplitMix64's output finalizer: a strong invertible 64-bit
// mix. Hash partitioners (shard and slot maps) use it directly so
// adjacent keys spread uniformly.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna. It has
// a 256-bit state and passes BigCrush; it is the default generator for
// workload mixes.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is derived from seed via
// SplitMix64, as recommended by the xoshiro authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// A xoshiro state of all zeros is a fixed point; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway for safety.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit value in the stream.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Source is the common interface satisfied by both generators.
type Source interface {
	Uint64() uint64
}

// Intn returns a uniform value in [0, n) drawn from src. It panics if
// n <= 0. Lemire's multiply-shift rejection method is used to avoid
// modulo bias.
func Intn(src Source, n int) int {
	if n <= 0 {
		panic("prng: Intn called with n <= 0")
	}
	return int(Uint64n(src, uint64(n)))
}

// Uint64n returns a uniform value in [0, n) drawn from src. It panics if
// n == 0.
func Uint64n(src Source, n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n called with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return src.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits.
	threshold := -n % n
	for {
		v := src.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func Float64(src Source) float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func Bool(src Source, p float64) bool {
	return Float64(src) < p
}

// Shuffle permutes the first n elements using the Fisher-Yates
// algorithm, calling swap(i, j) for each exchange.
func Shuffle(src Source, n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := Intn(src, i+1)
		swap(i, j)
	}
}

// Exponential returns an exponentially distributed value with the given
// mean. It is used to draw inter-arrival gaps in open-loop workloads.
func Exponential(src Source, mean float64) float64 {
	u := Float64(src)
	if u >= 1 {
		u = 0.9999999999999999
	}
	return -mean * math.Log(1-u)
}
