package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := NewSplitMix64(43)
	same := 0
	a = NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/1000", same)
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a, b := NewXoshiro256(7), NewXoshiro256(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	rng := NewXoshiro256(1)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := Intn(rng, n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Intn(NewSplitMix64(1), 0)
}

func TestUint64nUniformity(t *testing.T) {
	rng := NewXoshiro256(99)
	const n, samples = 10, 100000
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[Uint64n(rng, n)]++
	}
	want := float64(samples) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d = %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewSplitMix64(seed)
		for i := 0; i < 100; i++ {
			v := Float64(rng)
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	rng := NewXoshiro256(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if Bool(rng, 0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", p)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewXoshiro256(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := Exponential(rng, 100)
		if v < 0 {
			t.Fatal("exponential draw must be non-negative")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-100)/100 > 0.02 {
		t.Fatalf("exponential mean = %v, want ~100", mean)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := NewXoshiro256(3)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	Shuffle(rng, len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		if x < 0 || x > 9 || seen[x] {
			t.Fatalf("not a permutation: %v", xs)
		}
		seen[x] = true
	}
}

func TestZeroStateXoshiroGuard(t *testing.T) {
	// Any seed must produce a non-zero internal state (a zero state is
	// a fixed point of xoshiro).
	for seed := uint64(0); seed < 100; seed++ {
		x := NewXoshiro256(seed)
		if x.Uint64() == 0 && x.Uint64() == 0 && x.Uint64() == 0 && x.Uint64() == 0 {
			t.Fatalf("seed %d produced a degenerate stream", seed)
		}
	}
}
