# Development targets. `make check` is the tier-1 gate; `make race`
# runs the race detector over every concurrency-bearing package; and
# `make ci` is the exact entrypoint .github/workflows/ci.yml calls.

GO ?= go
GOFMT ?= gofmt

# Every package whose tests exercise goroutines or whose code runs
# under shared locks: the root benchmarks, the lock algorithms and
# their core feedback state, the sharded KV layer (including the
# flat-combining pipeline), the storage engines the shard locks guard,
# the workload/stats/harness/db plumbing the benches drive, and the
# discrete-event kernel (goroutine-backed simulated threads) with the
# AMP cost model that runs on it.
RACE_PKGS = . \
	./internal/core \
	./internal/locks \
	./internal/shardedkv \
	./internal/wal \
	./internal/fault \
	./internal/kvserver \
	./internal/kvclient \
	./internal/storage/... \
	./internal/workload \
	./internal/stats \
	./internal/harness \
	./internal/dbs \
	./internal/dbbench \
	./internal/simlock \
	./internal/sim \
	./internal/amp

# The repo's own multichecker (see internal/analysis): custom vet
# passes that machine-check the concurrency contracts documented in
# ARCHITECTURE.md ("Enforced invariants"). Built once into bin/ as a
# real file target, so every vet invocation in a run — and repeated
# local runs — reuse one binary (Go's build cache makes the rebuild a
# no-op when nothing changed).
REPOLINT = bin/repolint

.PHONY: check build vet lint lint-test fmt-check test short race ci bench bench-json net-smoke wal-smoke soak FORCE

check: vet lint lint-test fmt-check build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

$(REPOLINT): FORCE
	$(GO) build -o $@ ./cmd/repolint

FORCE:

lint: $(REPOLINT)
	$(GO) vet -vettool=$(REPOLINT) ./...

# lint-test runs the analyzer suite's own tests: the CFG builder and
# dataflow-solver unit tests plus every pass's analysistest fixtures
# (including the multi-package fact-exchange ones).
lint-test:
	$(GO) test ./internal/analysis/...

fmt-check:
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# Reduced smoke paths (figures run scaled-down reproductions; the
# shardedkv reshard tests force splits mid-stress even under -short,
# so every ci run exercises the shard-map swap path).
short:
	$(GO) test -short ./...

race:
	$(GO) test -race $(RACE_PKGS)

# net-smoke proves the network front end end to end with the REAL
# binaries: build cmd/kvserver, serve, drive a short mixed-class
# client mix through kvbench -net -netaddr (big workers interactive,
# little workers bulk), then SIGTERM the server and assert it exits
# cleanly (the graceful-shutdown contract).
# The server binds port 0 and reports the kernel-chosen address on
# stderr, so concurrent jobs on a shared runner can never collide on
# (or accidentally smoke-test) each other's listener.
net-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/kvserver ./cmd/kvserver; \
	$$tmp/kvserver -addr 127.0.0.1:0 -engine hashkv -lock asl 2>$$tmp/server.log & pid=$$!; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's/.* on \(127\.0\.0\.1:[0-9][0-9]*\)$$/\1/p' $$tmp/server.log | head -1); \
		[ -n "$$addr" ] && break; \
		sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "net-smoke: server never reported its address"; cat $$tmp/server.log; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	$(GO) run ./cmd/kvbench -net -netaddr $$addr -mixes zipfw \
		-dur 200ms -warmup 50ms -keys 4096 || { cat $$tmp/server.log; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid; \
	cat $$tmp/server.log; \
	rm -rf $$tmp; \
	echo "net-smoke: clean shutdown"

# wal-smoke proves the durability story with the REAL binaries and a
# REAL kill -9: serve with -wal, fill a deterministic keyset through
# cmd/kvcheck (interactive-class puts ack only after group commit),
# SIGKILL the loaded server, restart it on the same log directory, and
# verify every sync-acked key came back (bulk-class keys may legally be
# lost — kvcheck exits 1 only on a broken durability promise). Runs as
# a non-gating CI job next to net-smoke.
wal-smoke:
	@set -e; \
	tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/kvserver ./cmd/kvserver; \
	$(GO) build -o $$tmp/kvcheck ./cmd/kvcheck; \
	$$tmp/kvserver -addr 127.0.0.1:0 -engine lsm -wal $$tmp/wal 2>$$tmp/server1.log & pid=$$!; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's/.* on \(127\.0\.0\.1:[0-9][0-9]*\)$$/\1/p' $$tmp/server1.log | head -1); \
		[ -n "$$addr" ] && break; \
		sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "wal-smoke: server never reported its address"; cat $$tmp/server1.log; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	$$tmp/kvcheck -addr $$addr -n 2000 -mode fill || { cat $$tmp/server1.log; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	kill -9 $$pid; \
	wait $$pid 2>/dev/null || true; \
	$$tmp/kvserver -addr 127.0.0.1:0 -engine lsm -wal $$tmp/wal 2>$$tmp/server2.log & pid=$$!; \
	addr=""; \
	for i in $$(seq 1 100); do \
		addr=$$(sed -n 's/.* on \(127\.0\.0\.1:[0-9][0-9]*\)$$/\1/p' $$tmp/server2.log | head -1); \
		[ -n "$$addr" ] && break; \
		sleep 0.1; \
	done; \
	[ -n "$$addr" ] || { echo "wal-smoke: restarted server never reported its address"; cat $$tmp/server2.log; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	$$tmp/kvcheck -addr $$addr -n 2000 -mode verify || { cat $$tmp/server2.log; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; }; \
	kill -TERM $$pid; \
	wait $$pid; \
	cat $$tmp/server2.log; \
	rm -rf $$tmp; \
	echo "wal-smoke: durability held across kill -9"

# soak is the chaos harness: cmd/kvsoak serves the REAL kvserver
# binary with fault injection armed on alternate incarnations, drives
# mixed-class traffic through the retrying client while kill -9ing and
# restarting the server, fuzzes the listener, and checks every read
# against a per-key model — exit 1 if any sync-acked write is lost or
# any read returns an impossible value. Runs as a non-gating CI job
# (soak-smoke) next to wal-smoke; locally, raise -dur for longer runs.
soak:
	@set -e; \
	tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/kvserver ./cmd/kvserver; \
	$(GO) build -o $$tmp/kvsoak ./cmd/kvsoak; \
	$$tmp/kvsoak -server $$tmp/kvserver -dur $${SOAK_DUR:-60s} -seed $${SOAK_SEED:-1} || { rm -rf $$tmp; exit 1; }; \
	rm -rf $$tmp

# ci is what the workflow runs: the tier-1 gate, the race gate, the
# short smoke paths, and the network smoke. wal-smoke and soak are
# separate non-gating jobs in the workflow.
ci: check race short net-smoke

bench:
	$(GO) run ./cmd/kvbench -dur 500ms

# bench-json appends one trajectory record per row to
# BENCH_kvbench.json (CI uploads it as an artifact). The configuration
# is deliberately contended — few shards, a microsecond critical
# section, the write-heavy zipfian mix — so the pipe-* rows show real
# combining (ops_per_lock_take > 1), the rs-* rows reshard mid-run
# (splits/reshard_events in the records), and the pipe-ff-* rows show
# the fire-and-forget write path. The second run is the mixed-class
# NETWORK smoke load: a heavy critical section (so service time
# dominates scheduler noise on small runners) and a one-slot bulk
# admission gate — on the asl rows the interactive class's p99 should
# sit at or below the bulk class's (p99_interactive <= p99_bulk in the
# records), while the class-oblivious mutex rows show no separation.
# rs-* and net-* rows are trend data like everything else here: split
# counts and queueing depend on how fast skew accumulates inside the
# short measured window. The third run adds the durable rows: wal-*
# (plain store, group commit via commit leader election) and
# wal-pipe-* (pipeline, whole combiner batch per fsync) both carry
# ops_per_fsync — the group-commit figure of merit, which should sit
# well above 1 on wal-pipe-* and climb with the combine batch size.
# The fourth run is the biased-lock leg: a single big worker owning
# hot shards, so the bias-* and rs-pipe-bias-* rows carry the
# adopt/revoke counters (bias_adoptions, bias_revocations,
# bias_fast_acquires) and their ops_per_lock_take should hold level
# with the corresponding rs-pipe-* rows — the owner's fast path
# removes the RMW without costing the combiner its batching.
bench-json:
	$(GO) run ./cmd/kvbench -engines hashkv,lsm -mixes zipfw,zipf \
		-locks asl,mutex -pipeline -reshard -ff -shards 4 -cs 1us \
		-dur 500ms -warmup 150ms -json BENCH_kvbench.json
	$(GO) run ./cmd/kvbench -net -engines hashkv -mixes zipfw \
		-locks asl,mutex -pipeline -shards 4 -cs 100us -bulkinflight 1 \
		-dur 500ms -warmup 150ms -json BENCH_kvbench.json
	$(GO) run ./cmd/kvbench -engines hashkv -mixes zipfw \
		-locks asl -pipeline -wal -shards 4 -cs 1us \
		-dur 500ms -warmup 150ms -json BENCH_kvbench.json
	$(GO) run ./cmd/kvbench -engines hashkv -mixes zipfw \
		-locks asl -pipeline -reshard -bias -shards 4 -threads 8 \
		-bigs 1 -cs 1us -dur 500ms -warmup 150ms \
		-json BENCH_kvbench.json
