# Development targets. `make check` is the tier-1 gate; `make race`
# runs the race detector over the concurrency-bearing packages.

GO ?= go
GOFMT ?= gofmt

.PHONY: check build vet fmt-check test short race bench

check: vet fmt-check build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# Reduced smoke paths (figures run scaled-down reproductions).
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/locks ./internal/core ./internal/shardedkv

bench:
	$(GO) run ./cmd/kvbench -dur 500ms
