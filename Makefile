# Development targets. `make check` is the tier-1 gate; `make race`
# runs the race detector over every concurrency-bearing package; and
# `make ci` is the exact entrypoint .github/workflows/ci.yml calls.

GO ?= go
GOFMT ?= gofmt

# Every package whose tests exercise goroutines or whose code runs
# under shared locks: the root benchmarks, the lock algorithms and
# their core feedback state, the sharded KV layer (including the
# flat-combining pipeline), the storage engines the shard locks guard,
# and the workload/stats/harness/db plumbing the benches drive.
RACE_PKGS = . \
	./internal/core \
	./internal/locks \
	./internal/shardedkv \
	./internal/storage/... \
	./internal/workload \
	./internal/stats \
	./internal/harness \
	./internal/dbs \
	./internal/dbbench \
	./internal/simlock

.PHONY: check build vet fmt-check test short race ci bench bench-json

check: vet fmt-check build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$($(GOFMT) -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# Reduced smoke paths (figures run scaled-down reproductions; the
# shardedkv reshard tests force splits mid-stress even under -short,
# so every ci run exercises the shard-map swap path).
short:
	$(GO) test -short ./...

race:
	$(GO) test -race $(RACE_PKGS)

# ci is what the workflow runs: the tier-1 gate, the race gate, and
# the short smoke paths.
ci: check race short

bench:
	$(GO) run ./cmd/kvbench -dur 500ms

# bench-json appends one trajectory record per row to
# BENCH_kvbench.json (CI uploads it as an artifact). The configuration
# is deliberately contended — few shards, a microsecond critical
# section, the write-heavy zipfian mix — so the pipe-* rows show real
# combining (ops_per_lock_take > 1), the rs-* rows reshard mid-run
# (splits/reshard_events in the records), and the pipe-ff-* rows show
# the fire-and-forget write path. rs-* rows are trend data like
# everything else here: split counts depend on how fast skew
# accumulates inside the short measured window.
bench-json:
	$(GO) run ./cmd/kvbench -engines hashkv,lsm -mixes zipfw,zipf \
		-locks asl,mutex -pipeline -reshard -ff -shards 4 -cs 1us \
		-dur 500ms -warmup 150ms -json BENCH_kvbench.json
