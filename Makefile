# Development targets. `make check` is the tier-1 gate; `make race`
# runs the race detector over the concurrency-bearing packages.

GO ?= go

.PHONY: check build vet test short race bench

check: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Reduced smoke paths (figures run scaled-down reproductions).
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/locks ./internal/core ./internal/shardedkv

bench:
	$(GO) run ./cmd/kvbench -dur 500ms
