// Command kvcheck is the durability verifier behind `make wal-smoke`:
// it fills a kvserver with a deterministic keyset over the wire, and
// after the server is killed and restarted, verifies every key it
// promised durable came back.
//
// Usage:
//
//	kvcheck -addr 127.0.0.1:7877 -n 2000 -mode fill     # write keys 0..n-1
//	kvcheck -addr 127.0.0.1:7877 -n 2000 -mode verify   # after kill+restart
//
// Fill writes every key with the INTERACTIVE class: with the server's
// -wal enabled those acks arrive only after the record's group commit,
// so each acked key is a durability promise a kill -9 must not break.
// A trailing slice of bulk-class writes (-bulk fraction) rides along
// unverified-on-loss: bulk acks are async, so verify only demands that
// whatever survived has the right bytes. Exit status: 0 = consistent,
// 1 = a durability promise was broken, 2 = usage/connection error.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/kvclient"
	"repro/internal/kvserver"
)

// valueFor derives key k's expected payload: key echo plus a fixed tag
// so a torn or misdirected replay cannot fake a match.
func valueFor(k uint64) []byte {
	v := make([]byte, 16)
	binary.LittleEndian.PutUint64(v[:8], k^0x5bd1e995)
	copy(v[8:], "kvcheck!")
	return v
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7877", "kvserver address")
	n := flag.Uint64("n", 2_000, "keys in the deterministic set")
	mode := flag.String("mode", "", "fill | verify")
	bulk := flag.Float64("bulk", 0.25, "fraction of the keyset written bulk-class (async ack; may legally be lost)")
	dialTimeout := flag.Duration("dial-timeout", 5*time.Second, "retry window for connecting")
	flag.Parse()

	if *mode != "fill" && *mode != "verify" {
		fmt.Fprintln(os.Stderr, "kvcheck: -mode must be fill or verify")
		os.Exit(2)
	}
	if *bulk < 0 || *bulk > 1 {
		fmt.Fprintln(os.Stderr, "kvcheck: -bulk must be in [0,1]")
		os.Exit(2)
	}
	// Keys below syncedUpTo are written interactive-class (sync-wait
	// ack: a durability promise); the rest bulk-class.
	syncedUpTo := *n - uint64(float64(*n)**bulk)

	c, err := kvclient.DialRetry(*addr, *dialTimeout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvcheck: dial %s: %v\n", *addr, err)
		os.Exit(2)
	}
	defer c.Close()

	switch *mode {
	case "fill":
		for k := uint64(0); k < *n; k++ {
			class := kvserver.ClassInteractive
			if k >= syncedUpTo {
				class = kvserver.ClassBulk
			}
			if _, err := c.Put(class, k, valueFor(k)); err != nil {
				fmt.Fprintf(os.Stderr, "kvcheck: put %d: %v\n", k, err)
				os.Exit(2)
			}
		}
		fmt.Printf("kvcheck: filled %d keys (%d sync-acked, %d bulk)\n",
			*n, syncedUpTo, *n-syncedUpTo)
	case "verify":
		var broken, lostBulk, held uint64
		for k := uint64(0); k < *n; k++ {
			v, ok, err := c.Get(kvserver.ClassInteractive, k)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kvcheck: get %d: %v\n", k, err)
				os.Exit(2)
			}
			want := valueFor(k)
			switch {
			case ok && string(v) == string(want):
				held++
			case !ok && k >= syncedUpTo:
				// A lost bulk write is within contract: its ack never
				// promised durability.
				lostBulk++
			default:
				broken++
				if broken <= 10 {
					fmt.Fprintf(os.Stderr, "kvcheck: key %d: got %x,%v want %x\n", k, v, ok, want)
				}
			}
		}
		fmt.Printf("kvcheck: %d/%d keys held (%d bulk lost within contract, %d broken promises)\n",
			held, *n, lostBulk, broken)
		if broken > 0 {
			os.Exit(1)
		}
	}
}
