// Command ampsim regenerates the paper's evaluation figures on the
// deterministic discrete-event AMP simulator: the micro-benchmarks
// (Figs. 1, 4, 5, 8a–8i), the database studies (Figs. 9/10 as
// <db>-cmp, <db>-slos and <db>-cdf for kyoto, upscaledb, lmdb,
// leveldb and sqlite) and the cross-platform summary ("platforms").
// Output is aligned text by default, CSV with -csv.
//
// Usage:
//
//	ampsim -fig 8a               # one figure
//	ampsim -fig upscaledb-cmp    # Fig. 9d
//	ampsim -fig all              # everything (minutes)
//	ampsim -fig 8d -trace t.csv  # also dump the Bench-2 trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/figures"
	"repro/internal/harness"
	"repro/internal/stats"
)

func main() {
	fig := flag.String("fig", "8a", "figure to regenerate: 1,4,5,8a..8i or 'all'")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	trace := flag.String("trace", "", "with -fig 8d: write the raw per-epoch trace CSV to this file")
	flag.Parse()

	runners := map[string]func() *harness.Figure{
		"1":  figures.Fig1,
		"4":  figures.Fig4,
		"5":  figures.Fig5,
		"8a": figures.Fig8a,
		"8b": figures.Fig8b,
		"8c": figures.Fig8c,
		"8e": figures.Fig8e,
		"8f": figures.Fig8f,
		"8g": figures.Fig8g,
		"8h": figures.Fig8h,
		"8i": figures.Fig8i,
	}
	// Database figures (9a..9i, 10a..10f): comparison bars, SLO sweep
	// and latency CDF per database template.
	for _, tpl := range figures.AllDBTemplates() {
		tpl := tpl
		runners[tpl.Name+"-cmp"] = func() *harness.Figure { return figures.DBComparison(tpl) }
		runners[tpl.Name+"-slos"] = func() *harness.Figure { return figures.DBSLOSweep(tpl, 11) }
		runners[tpl.Name+"-cdf"] = func() *harness.Figure { return figures.DBCDF(tpl) }
	}
	runners["platforms"] = func() *harness.Figure {
		rows, f := figures.PlatformStudy()
		fmt.Print(figures.FormatPlatformRows(rows))
		return f
	}
	order := []string{"1", "4", "5", "8a", "8b", "8c", "8d", "8e", "8f", "8g", "8h", "8i",
		"kyoto-cmp", "kyoto-slos", "kyoto-cdf",
		"upscaledb-cmp", "upscaledb-slos", "upscaledb-cdf",
		"lmdb-cmp", "lmdb-slos", "lmdb-cdf",
		"leveldb-cmp", "leveldb-slos", "leveldb-cdf",
		"sqlite-cmp", "sqlite-slos", "sqlite-cdf",
		"platforms",
	}

	var names []string
	if strings.EqualFold(*fig, "all") {
		names = order
	} else {
		names = strings.Split(*fig, ",")
	}
	for _, name := range names {
		name = strings.TrimSpace(strings.TrimPrefix(name, "fig"))
		start := time.Now()
		var f *harness.Figure
		var tr *stats.TimeSeries
		if name == "8d" {
			f, tr = figures.Fig8d()
		} else if run, ok := runners[name]; ok {
			f = run()
		} else {
			fmt.Fprintf(os.Stderr, "ampsim: unknown figure %q\n", name)
			os.Exit(2)
		}
		if *csv {
			fmt.Print(f.CSV())
		} else {
			fmt.Print(f.Render())
		}
		fmt.Printf("-- %s regenerated in %v --\n\n", f.ID, time.Since(start).Round(time.Millisecond))
		if name == "8d" && *trace != "" && tr != nil {
			if err := os.WriteFile(*trace, []byte(tr.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "ampsim: writing trace: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "trace written to %s (%d samples)\n", *trace, tr.Len())
		}
	}
}
