// Command dbbench runs the paper's database evaluation (§4.2, Figs. 9
// and 10) against the real Go lock implementations and the from-scratch
// database engines in internal/dbs. Asymmetry is emulated with the
// calibrated work shim (DESIGN.md substitutions); on hosts without
// enough cores the numbers are sanity-level only — cmd/ampsim holds the
// shape-faithful reproduction.
//
// Usage:
//
//	dbbench -db kyoto -mode compare
//	dbbench -db sqlite -mode sweep -points 6
//	dbbench -db upscaledb -mode cdf -slo 140us
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dbbench"
	"repro/internal/dbs/kyoto"
	"repro/internal/dbs/ldb"
	"repro/internal/dbs/lmdbx"
	"repro/internal/dbs/sqlike"
	"repro/internal/dbs/upscale"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/stats"
	"repro/internal/workload"
)

// build constructs the chosen engine with the given lock factory.
func build(db string, f locks.Factory) (dbbench.DB, *workload.Mix, error) {
	pad := dbbench.DefaultPadder()
	switch db {
	case "kyoto":
		return kyoto.New(f, pad, kyoto.Config{}), workload.YCSBA(), nil
	case "upscaledb":
		return upscale.New(f, pad, upscale.Config{}), workload.YCSBA(), nil
	case "lmdb":
		return lmdbx.New(f, pad, lmdbx.Config{}), workload.YCSBA(), nil
	case "leveldb":
		getOnly := workload.NewMix(struct {
			Kind   workload.OpKind
			Weight int
		}{workload.OpGet, 1})
		return ldb.New(f, pad, ldb.Config{}), getOnly, nil
	case "sqlite":
		return sqlike.New(f, pad, sqlike.Config{}), workload.SQLiteMix(), nil
	default:
		return nil, nil, fmt.Errorf("unknown database %q", db)
	}
}

func main() {
	db := flag.String("db", "kyoto", "database: kyoto|upscaledb|lmdb|leveldb|sqlite")
	mode := flag.String("mode", "compare", "compare|sweep|cdf")
	dur := flag.Duration("dur", 2*time.Second, "measurement duration per configuration")
	bigs := flag.Int("bigs", 4, "big-class workers")
	littles := flag.Int("littles", 4, "little-class workers")
	slo := flag.Duration("slo", 100*time.Microsecond, "SLO for cdf mode / max for sweep")
	points := flag.Int("points", 6, "sweep points")
	flag.Parse()

	runOne := func(name string, factory locks.Factory, sloNs int64) *dbbench.Result {
		engine, mix, err := build(*db, factory)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dbbench:", err)
			os.Exit(2)
		}
		cfg := dbbench.Config{
			BigWorkers:    *bigs,
			LittleWorkers: *littles,
			Duration:      *dur,
			SLO:           sloNs,
			Mix:           mix,
			Seed:          uint64(17),
			NCSUnits:      200,
		}
		return dbbench.Run(name, engine, cfg)
	}

	switch *mode {
	case "compare":
		rows := []stats.Summary{}
		add := func(name string, f locks.Factory, sloNs int64) {
			rows = append(rows, runOne(name, f, sloNs).Summary)
			fmt.Fprintf(os.Stderr, "done: %s\n", name)
		}
		add("pthread", locks.FactoryPthread(), -1)
		add("tas", locks.FactoryTAS(core.Big, 4), -1)
		add("ticket", locks.FactoryTicket(), -1)
		add("shfl-pb10", locks.FactoryProportional(10), -1)
		add("mcs", locks.FactoryMCS(), -1)
		add("libasl-0", locks.FactoryASL(), 0)
		add("libasl-slo", locks.FactoryASL(), int64(*slo))
		add("libasl-max", locks.FactoryASL(), -1)
		fmt.Print(stats.FormatSummaries(rows))
	case "sweep":
		pts := []core.ProfilePoint{}
		for i := 0; i < *points; i++ {
			s := int64(*slo) * int64(i) / int64(*points-1)
			r := runOne(fmt.Sprintf("slo=%d", s), locks.FactoryASL(), s)
			pts = append(pts, core.ProfilePoint{
				SLO:        s,
				Throughput: r.Summary.Throughput,
				BigP99:     r.Summary.BigP99,
				LittleP99:  r.Summary.LittleP99,
				OverallP99: r.Summary.OverallP99,
			})
			fmt.Fprintf(os.Stderr, "done: slo=%v\n", time.Duration(s))
		}
		fmt.Print(core.FormatProfile(pts))
	case "cdf":
		r := runOne("libasl", locks.FactoryASL(), int64(*slo))
		f := harness.CDFFigure(*db+"-cdf", *db+" latency CDF", int64(*slo), r.Overall, r.Little, 48)
		fmt.Print(f.Render())
	default:
		fmt.Fprintf(os.Stderr, "dbbench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
