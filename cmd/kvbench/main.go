// Command kvbench drives the sharded asymmetry-aware KV service
// (internal/shardedkv) with the repository's workload mixes and
// reports throughput and tail latency per (engine, mix, lock)
// configuration, comparing ASL shard locks against class-oblivious
// baselines such as plain sync.Mutex.
//
// Usage:
//
//	kvbench                                  # engine × mix grid, asl vs mutex
//	kvbench -engines hashkv,btree -mixes zipf -locks all
//	kvbench -threads 8 -bigs 4 -slo 200us -dur 1s -shardstats
//	kvbench -pipeline -mixes zipfw           # ASL vs combining vs plain, one grid
//	kvbench -pipeline -reshard -ff           # + rs-*, rs-pipe-*, pipe-ff-* rows
//	kvbench -wal -pipeline                   # + wal-*, wal-pipe-* durable rows
//	kvbench -bias -bigs 1 -mixes zipfw       # + bias-* biased-shard-lock rows
//	kvbench -bias -reshard                   # + rs-pipe-bias-* (splits revoke bias)
//	kvbench -net -mixes zipfw                # the grid over TCP: net-* rows
//	kvbench -net -netaddr host:7877          # ... against an external kvserver
//	kvbench -json BENCH_kvbench.json         # append a trajectory record per row
//
// Mixes: read (95% get), write (80% put), zipf (YCSB-A 50/50 over
// zipfian keys), zipfw (write-heavy 80% put over zipfian keys — the
// hot-shard regime combining and resharding target), batch
// (MultiGet/MultiPut, keys sorted by shard), scan (YCSB-E 95% range
// scan / 5% put over -span-wide windows), and scanbatch (MultiRange,
// -batch ranges per request grouped by shard).
// Locks: asl, asl-blocking (for hosts with more workers than cores),
// mutex, mcs, pthread. With -pipeline every selected lock also runs a
// pipe-<lock> row that routes operations through the flat-combining
// AsyncStore front end over the same shard locks, so handoff-policy
// (ASL) and combining answers to the same contention are one grid run;
// pipe rows report ops-per-lock-take on stderr and in the -json record
// (by default the combiner's drain bound is adaptive; -pipebatch N
// fixes it). -ff adds a pipe-ff-<lock> row whose writes go through the
// fire-and-forget PutAsync path (submit without waiting; the run's
// epilogue Flush is the write barrier). -reshard adds rs-<lock> (and,
// with -pipeline, rs-pipe-<lock>) rows on a store with the skew
// detector live: sustained hot shards split mid-run, and the reshard
// event/split counts land on stderr and in the -json records. -net
// replaces the expansion with the over-the-wire family: net-<lock>
// (and net-pipe-<lock>) rows run against an in-process kvserver, big
// workers issuing interactive-class requests and little workers
// bulk-class ones, with client-side per-class p99s and admission
// counts in the records (see cmd/kvbench/README.md for the full flag
// and schema reference). -bias adds bias-<lock> rows (and, with
// -reshard, rs-pipe-bias-<lock>) whose shard locks carry single-owner
// bias: the dominant combiner is adopted after a sustained take streak
// and acquires with plain atomics until foreign traffic or a split
// revokes it through the epoch/handshake grace period; the rows report
// bias_adoptions/bias_revocations/bias_fast_acquires alongside the
// pipeline's ops_per_lock_take. Like every trajectory number, rs-* and net-*
// rows are trend data, not gates — shared runners are noisy and
// splits/queueing depend on how fast skew accumulates within the
// measured window.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/kvclient"
	"repro/internal/kvserver"
	"repro/internal/locks"
	"repro/internal/prng"
	"repro/internal/shardedkv"
	"repro/internal/stats"
	"repro/internal/wal"
	"repro/internal/workload"
)

type benchConfig struct {
	shards    int
	threads   int
	bigs      int
	dur       time.Duration
	warmup    time.Duration
	slo       int64
	keys      uint64
	vsize     int
	batch     int
	span      uint64
	zipfS     float64
	ncsUnits  int64
	csUnits   int64
	pipeBatch int
	skew      float64
	// Net-mode knobs (-net): bulk-class epoch SLO on the server, the
	// per-shard bulk admission bound, and the client connection count
	// (0 = one per worker).
	sloBulk      time.Duration
	bulkInflight int
	netConns     int
}

type mixSpec struct {
	name string
	mix  *workload.Mix
	// zipf selects zipfian key popularity instead of uniform.
	zipf bool
	// batched selects MultiGet/MultiPut operation batches.
	batched bool
}

func allMixes() []mixSpec {
	return []mixSpec{
		{name: "read", mix: workload.ReadHeavy()},
		{name: "write", mix: workload.WriteHeavy()},
		{name: "zipf", mix: workload.YCSBA(), zipf: true},
		{name: "zipfw", mix: workload.WriteHeavy(), zipf: true},
		{name: "batch", mix: workload.ReadHeavy(), batched: true},
		{name: "scan", mix: workload.ScanHeavy()},
		{name: "scanbatch", mix: workload.ScanHeavy(), batched: true},
	}
}

type lockSpec struct {
	name string
	f    locks.Factory
	// slo enables epoch/SLO annotation (only meaningful for asl).
	slo bool
	// pipe routes operations through the flat-combining AsyncStore
	// front end over the same shard locks.
	pipe bool
	// ff additionally routes writes through the fire-and-forget
	// PutAsync path (implies pipe's AsyncStore).
	ff bool
	// reshard runs the row on a store with the skew detector live.
	reshard bool
	// wal runs the row on a durable store: every write appended to a
	// per-shard log, big-class (interactive) writers waiting for group
	// commit, little-class (bulk) writers acking after the buffered
	// append. The row reports ops-per-fsync — the group-commit
	// amortisation the WAL exists to maximise.
	wal bool
	// net runs the row over the wire: an in-process kvserver serves
	// the store and the workers drive it through kvclient connections,
	// big-class workers as interactive requests and little-class
	// workers as bulk.
	net bool
	// bias wraps every shard lock with locks.Biased: a shard whose
	// combining pipeline sees one worker take essentially every lock
	// acquisition adopts that worker (plain-atomic fast path, no
	// contended RMW per op) until foreign traffic — or a split —
	// revokes the bias through the epoch/handshake grace period. Bias
	// rows route through the pipeline (the adoption signal is the
	// combiner take streak) and report adoption/revocation counts.
	bias bool
}

// expandLocks grows each base lock into its comparison family: the
// plain row, a pipe-* combining sibling (-pipeline), a pipe-ff-*
// fire-and-forget sibling (-ff), and rs-*/rs-pipe-* dynamic-reshard
// siblings (-reshard) — so handoff policy, combining, and shard
// fission all answer the same contention in one grid run.
func expandLocks(lks []lockSpec, pipeline, ff, reshard, walRows, bias bool) []lockSpec {
	var out []lockSpec
	for _, lk := range lks {
		out = append(out, lk)
		if pipeline {
			out = append(out, lockSpec{name: "pipe-" + lk.name, f: lk.f, slo: lk.slo, pipe: true})
		}
		if ff {
			out = append(out, lockSpec{name: "pipe-ff-" + lk.name, f: lk.f, slo: lk.slo, pipe: true, ff: true})
		}
		if reshard {
			out = append(out, lockSpec{name: "rs-" + lk.name, f: lk.f, slo: lk.slo, reshard: true})
			if pipeline {
				out = append(out, lockSpec{name: "rs-pipe-" + lk.name, f: lk.f, slo: lk.slo, pipe: true, reshard: true})
			}
		}
		if bias {
			// bias-<lock> is a pipeline row by construction: the
			// combiner take streak is the adoption signal, and the
			// ops-per-lock-take column stays unit-compatible with the
			// pipe-*/rs-pipe-* rows it is compared against. With
			// -reshard a rs-pipe-bias-<lock> sibling adds splits — every
			// split of a biased shard revokes the parent's bias first.
			out = append(out, lockSpec{name: "bias-" + lk.name, f: lk.f, slo: lk.slo, pipe: true, bias: true})
			if reshard {
				out = append(out, lockSpec{name: "rs-pipe-bias-" + lk.name, f: lk.f, slo: lk.slo, pipe: true, reshard: true, bias: true})
			}
		}
		if walRows {
			// wal-<lock> pays one commit-pipeline group commit per
			// sync-wait write; wal-pipe-<lock> additionally rides the
			// combiner, so its whole drained batch shares one fsync —
			// ops_per_fsync should climb with the combine batch size.
			out = append(out, lockSpec{name: "wal-" + lk.name, f: lk.f, slo: lk.slo, wal: true})
			if pipeline {
				out = append(out, lockSpec{name: "wal-pipe-" + lk.name, f: lk.f, slo: lk.slo, pipe: true, wal: true})
			}
		}
	}
	return out
}

// expandNetLocks grows each base lock into its over-the-wire family:
// a net-<lock> row per lock and, with -pipeline, a net-pipe-<lock> row
// whose server routes operations through the combining AsyncStore. The
// -ff and -reshard families are local-only (the protocol is
// request/response and the net rows keep placement static), so net
// mode replaces rather than extends the local expansion.
func expandNetLocks(lks []lockSpec, pipeline bool) []lockSpec {
	var out []lockSpec
	for _, lk := range lks {
		out = append(out, lockSpec{name: "net-" + lk.name, f: lk.f, slo: lk.slo, net: true})
		if pipeline {
			out = append(out, lockSpec{name: "net-pipe-" + lk.name, f: lk.f, slo: lk.slo, net: true, pipe: true})
		}
	}
	return out
}

func allLocks() []lockSpec {
	return []lockSpec{
		// asl is the paper's default spinning stack (reorderable over
		// MCS); asl-blocking is the Bench-6 flavour (sleeping standby
		// over the barging mutex) for hosts with more workers than
		// cores — use it when GOMAXPROCS < -threads.
		{name: "asl", f: locks.FactoryASL(), slo: true},
		{name: "asl-blocking", f: locks.FactoryASLBlocking(), slo: true},
		{name: "mutex", f: locks.FactorySyncMutex()},
		{name: "mcs", f: locks.FactoryMCS()},
		{name: "pthread", f: locks.FactoryPthread()},
	}
}

// spanHi returns lo+span-1 clamped to the top of the key space: a lo
// drawn near MaxUint64 must widen to the end, not wrap into an empty
// range.
func spanHi(lo, span uint64) uint64 {
	hi := lo + span - 1
	if hi < lo {
		return ^uint64(0)
	}
	return hi
}

// preload fills half the keyspace so gets have something to hit.
func preload(st *shardedkv.Store, cfg benchConfig) {
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	v := make([]byte, cfg.vsize)
	for k := uint64(0); k < cfg.keys; k += 2 {
		st.Put(w, k, v)
	}
}

// The workers drive the shardedkv.KV surface; Store (plain per-op
// locking) and AsyncStore (flat-combining pipeline) both implement
// it, so one worker loop serves both rows.

// ffAPI routes point writes through the fire-and-forget PutAsync path
// (submit without waiting); everything else stays on the waited
// pipeline. The insert-vs-replace answer is unknowable without
// waiting, so Put reports false — the bench ignores it.
type ffAPI struct{ *shardedkv.AsyncStore }

func (f ffAPI) Put(w *core.Worker, k uint64, v []byte) (bool, error) {
	f.AsyncStore.PutAsync(w, k, v)
	return false, nil
}

// run executes one configuration and returns its summary row, the
// store's per-shard counters, and (for pipe/rs/wal/bias rows) the
// aggregate combining, resharding, log, and biased-lock stats.
func run(name string, eng shardedkv.EngineSpec, mix mixSpec, lk lockSpec, cfg benchConfig) (stats.Summary, []shardedkv.ShardStats, *shardedkv.CombineStats, *shardedkv.ReshardStats, *wal.Stats, *locks.BiasStats) {
	// The critical-section pad emulates the paper's AMP regime on a
	// symmetric host: a little-class holder keeps the shard lock
	// CSFactor times longer, exactly the condition under which FIFO
	// queues collapse and bounded reordering pays (Fig. 1 vs Fig. 4).
	shim := workload.DefaultShim()
	scfg := shardedkv.Config{
		Shards:    cfg.shards,
		NewEngine: eng.New,
		NewLock:   lk.f,
		CSPad: func(w *core.Worker) {
			workload.Spin(shim.CSUnits(cfg.csUnits, w.Class()))
		},
		Bias: lk.bias,
	}
	if lk.reshard {
		// An aggressive detector relative to the run length: several
		// observation windows fit in the measured duration, so a
		// sustained zipf hot shard splits while the row is recording.
		window := cfg.dur / 10
		if window < 20*time.Millisecond {
			window = 20 * time.Millisecond
		}
		scfg.Reshard = &shardedkv.ReshardConfig{
			SkewFactor:    cfg.skew,
			Window:        window,
			Sustain:       2,
			MinOps:        256,
			MinContention: 0.005,
			MaxShards:     cfg.shards * 8,
		}
	}
	var walDir string
	if lk.wal {
		d, err := os.MkdirTemp("", "kvbench-wal-")
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvbench: wal dir: %v\n", err)
			os.Exit(1)
		}
		walDir = d
		// Default sync policies: big-class workers write interactive
		// (wait for group commit), little-class workers bulk (ack after
		// the buffered append).
		scfg.Durability = &shardedkv.DurabilityConfig{Dir: walDir}
	}
	st := shardedkv.New(scfg)
	preload(st, cfg)
	var api shardedkv.KV = st
	var async *shardedkv.AsyncStore
	if lk.pipe {
		async = shardedkv.NewAsync(st, shardedkv.AsyncConfig{MaxBatch: cfg.pipeBatch})
		if lk.ff {
			api = ffAPI{async}
		} else {
			api = async
		}
	}
	var keygen workload.KeyGen = workload.NewUniform(cfg.keys)
	if mix.zipf {
		keygen = workload.NewZipf(cfg.keys, cfg.zipfS)
	}
	useSLO := lk.slo && cfg.slo >= 0

	// Samples taken before recording turns on are discarded, as the
	// figure harness does with its Warmup window: they cover goroutine
	// spawn, cold engine structures, and the AIMD controller's
	// convergence from its initial window.
	var stop, recording atomic.Bool
	recs := make([]*stats.ClassedRecorder, cfg.threads)
	var wg sync.WaitGroup
	for i := 0; i < cfg.threads; i++ {
		class := core.Big
		if i >= cfg.bigs {
			class = core.Little
		}
		rec := stats.NewClassedRecorder()
		recs[i] = rec
		wg.Add(1)
		go func(i int, class core.Class) {
			defer wg.Done()
			w := core.NewWorker(core.WorkerConfig{Class: class})
			rng := prng.NewSplitMix64(uint64(i)*0x9e3779b97f4a7c15 + 0xbeef)
			val := make([]byte, cfg.vsize)
			ncs := shim.NCSUnits(cfg.ncsUnits, class)
			kvs := make([]shardedkv.Pair, cfg.batch)
			keys := make([]uint64, cfg.batch)
			reqs := make([]shardedkv.RangeReq, cfg.batch)
			// doOp returns the number of point operations the request
			// covered — batch size for batched ops, keys visited for
			// scans — so every row reports ops/s in the same per-key
			// unit (P99 stays per request).
			doOp := func() uint64 {
				kind := mix.mix.Draw(rng.Uint64())
				if mix.batched {
					switch kind {
					case workload.OpScan:
						for j := range reqs {
							lo := keygen.Draw(rng)
							reqs[j] = shardedkv.RangeReq{Lo: lo, Hi: spanHi(lo, cfg.span)}
						}
						visited := uint64(0)
						for _, res := range api.MultiRange(w, reqs) {
							visited += uint64(len(res))
						}
						return max(visited, 1)
					case workload.OpGet:
						for j := range keys {
							keys[j] = keygen.Draw(rng)
						}
						api.MultiGet(w, keys)
					default:
						for j := range kvs {
							kvs[j] = shardedkv.Pair{Key: keygen.Draw(rng), Value: val}
						}
						api.MultiPut(w, kvs)
					}
					return uint64(cfg.batch)
				}
				k := keygen.Draw(rng)
				switch kind {
				case workload.OpScan:
					visited := uint64(0)
					api.Range(w, k, spanHi(k, cfg.span), func(uint64, []byte) bool {
						visited++
						return true
					})
					return max(visited, 1)
				case workload.OpGet:
					api.Get(w, k)
				default:
					api.Put(w, k, val)
				}
				return 1
			}
			for !stop.Load() {
				var lat int64
				var n uint64
				if useSLO {
					w.EpochStart(0)
					n = doOp()
					lat = w.EpochEnd(0, cfg.slo)
				} else {
					s := w.Now()
					n = doOp()
					lat = w.Now() - s
				}
				if recording.Load() {
					rec.RecordBatch(class, lat, n)
				}
				workload.Spin(ncs)
			}
		}(i, class)
	}
	time.Sleep(cfg.warmup)
	recording.Store(true)
	time.Sleep(cfg.dur)
	stop.Store(true)
	wg.Wait()
	merged := stats.NewClassedRecorder()
	for _, r := range recs {
		merged.Merge(r)
	}
	var comb *shardedkv.CombineStats
	if async != nil {
		// Settle in-flight (fire-and-forget) requests so the combining
		// counters account for every submitted op.
		async.Flush(core.NewWorker(core.WorkerConfig{Class: core.Big}))
		c := async.AggregateCombineStats()
		comb = &c
	}
	var rs *shardedkv.ReshardStats
	if lk.reshard {
		st.StopReshard()
		r := st.ReshardStats()
		rs = &r
	}
	shardStats := st.Stats()
	var bs *locks.BiasStats
	if lk.bias {
		// Snapshot after the pipeline Flush above so the counters cover
		// every settled op (split-retired parents included).
		b := st.AggregateBiasStats()
		bs = &b
	}
	var ws *wal.Stats
	if lk.wal {
		s := st.WalStats()
		ws = &s
		st.Close(core.NewWorker(core.WorkerConfig{Class: core.Big}))
		os.RemoveAll(walDir)
	}
	return merged.Summarize(name, cfg.dur), shardStats, comb, rs, ws, bs
}

// netPreload fills half the keyspace over the wire (MultiPut batches)
// so gets have something to hit, mirroring preload.
func netPreload(cl *kvclient.Client, cfg benchConfig) error {
	v := make([]byte, cfg.vsize)
	kvs := make([]shardedkv.Pair, 0, 512)
	for k := uint64(0); k < cfg.keys; k += 2 {
		kvs = append(kvs, shardedkv.Pair{Key: k, Value: v})
		if len(kvs) == cap(kvs) || k+2 >= cfg.keys {
			if _, err := cl.MultiPut(kvserver.ClassInteractive, kvs); err != nil {
				return err
			}
			kvs = kvs[:0]
		}
	}
	return nil
}

// runNet executes one configuration over the wire: an in-process
// kvserver (or, with remoteAddr, an external one) serves the store,
// and the workers drive it through kvclient connections — big-class
// workers issue interactive requests, little-class workers bulk ones,
// so the per-request SLO class byte carries the asymmetry instead of
// any per-goroutine state. Returns the client-side summary (BigP99 =
// interactive, LittleP99 = bulk), the server's final stats, and (for
// net-pipe rows) the aggregate combining stats.
func runNet(name string, eng shardedkv.EngineSpec, mix mixSpec, lk lockSpec, cfg benchConfig, remoteAddr string) (stats.Summary, *kvserver.ServerStats, *shardedkv.CombineStats, error) {
	var srv *kvserver.Server
	var async *shardedkv.AsyncStore
	addr := remoteAddr
	if addr == "" {
		shim := workload.DefaultShim()
		st := shardedkv.New(shardedkv.Config{
			Shards:    cfg.shards,
			NewEngine: eng.New,
			NewLock:   lk.f,
			CSPad: func(w *core.Worker) {
				// Keyed to the EFFECTIVE class — the per-request hint —
				// so a bulk request pays the little-core critical
				// section whichever goroutine executes it.
				workload.Spin(shim.CSUnits(cfg.csUnits, w.Class()))
			},
		})
		if lk.pipe {
			async = shardedkv.NewAsync(st, shardedkv.AsyncConfig{MaxBatch: cfg.pipeBatch})
		}
		sloI := time.Duration(0)
		if lk.slo && cfg.slo > 0 {
			sloI = time.Duration(cfg.slo)
		}
		sloB := time.Duration(0)
		if lk.slo && cfg.sloBulk > 0 {
			sloB = cfg.sloBulk
		}
		var err error
		srv, err = kvserver.New(kvserver.Config{
			Store:          st,
			Async:          async,
			SLOInteractive: sloI,
			SLOBulk:        sloB,
			Admission:      kvserver.AdmissionConfig{BulkPerShard: cfg.bulkInflight},
		})
		if err != nil {
			return stats.Summary{}, nil, nil, err
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			return stats.Summary{}, nil, nil, err
		}
		defer srv.Close()
		addr = srv.Addr().String()
	}

	nconn := cfg.netConns
	if nconn <= 0 {
		nconn = cfg.threads
	}
	clients := make([]*kvclient.Client, nconn)
	for i := range clients {
		cl, err := kvclient.DialRetry(addr, 5*time.Second)
		if err != nil {
			return stats.Summary{}, nil, nil, fmt.Errorf("dial %s: %w", addr, err)
		}
		clients[i] = cl
		defer cl.Close()
	}
	if err := netPreload(clients[0], cfg); err != nil {
		return stats.Summary{}, nil, nil, fmt.Errorf("preload: %w", err)
	}

	var keygen workload.KeyGen = workload.NewUniform(cfg.keys)
	if mix.zipf {
		keygen = workload.NewZipf(cfg.keys, cfg.zipfS)
	}

	var stop, recording atomic.Bool
	var rejected atomic.Uint64
	var dead atomic.Int64
	var firstErr atomic.Pointer[error]
	recs := make([]*stats.ClassedRecorder, cfg.threads)
	var wg sync.WaitGroup
	for i := 0; i < cfg.threads; i++ {
		class := core.Big
		wireClass := kvserver.ClassInteractive
		if i >= cfg.bigs {
			class = core.Little
			wireClass = kvserver.ClassBulk
		}
		rec := stats.NewClassedRecorder()
		recs[i] = rec
		cl := clients[i%nconn]
		wg.Add(1)
		go func(i int, class core.Class, wireClass uint8, cl *kvclient.Client) {
			defer wg.Done()
			rng := prng.NewSplitMix64(uint64(i)*0x9e3779b97f4a7c15 + 0xbeef)
			val := make([]byte, cfg.vsize)
			kvs := make([]shardedkv.Pair, cfg.batch)
			keys := make([]uint64, cfg.batch)
			// doOp mirrors run()'s operation unit accounting; it
			// returns (ops covered, fatal error). Admission-rejected
			// bulk requests count as one completed (shed) op.
			doOp := func() (uint64, error) {
				kind := mix.mix.Draw(rng.Uint64())
				if mix.batched {
					switch kind {
					case workload.OpScan:
						// No MultiRange opcode (docs/protocol.md):
						// scanbatch issues its ranges back to back on
						// the pipelined connection.
						visited := uint64(0)
						for j := 0; j < cfg.batch; j++ {
							lo := keygen.Draw(rng)
							res, _, err := cl.Range(wireClass, lo, spanHi(lo, cfg.span), 0)
							if err != nil {
								return visited, err
							}
							visited += uint64(len(res))
						}
						return max(visited, 1), nil
					case workload.OpGet:
						for j := range keys {
							keys[j] = keygen.Draw(rng)
						}
						if _, _, err := cl.MultiGet(wireClass, keys); err != nil {
							return 0, err
						}
					default:
						for j := range kvs {
							kvs[j] = shardedkv.Pair{Key: keygen.Draw(rng), Value: val}
						}
						if _, err := cl.MultiPut(wireClass, kvs); err != nil {
							return 0, err
						}
					}
					return uint64(cfg.batch), nil
				}
				k := keygen.Draw(rng)
				switch kind {
				case workload.OpScan:
					res, _, err := cl.Range(wireClass, k, spanHi(k, cfg.span), 0)
					if err != nil {
						return 0, err
					}
					return max(uint64(len(res)), 1), nil
				case workload.OpGet:
					if _, _, err := cl.Get(wireClass, k); err != nil {
						return 0, err
					}
				default:
					if _, err := cl.Put(wireClass, k, val); err != nil {
						return 0, err
					}
				}
				return 1, nil
			}
			for !stop.Load() {
				s := time.Now()
				n, err := doOp()
				lat := int64(time.Since(s))
				if err != nil {
					if kvclient.IsAdmissionRejected(err) {
						rejected.Add(1)
						n = max(n, 1)
					} else {
						// Connection-level failure: a silently thinner
						// worker pool would make the row's record a
						// lie, so the death is counted and fails the
						// row after the run.
						dead.Add(1)
						firstErr.CompareAndSwap(nil, &err)
						return
					}
				}
				if recording.Load() {
					rec.RecordBatch(class, lat, n)
				}
			}
		}(i, class, wireClass, cl)
	}
	time.Sleep(cfg.warmup)
	recording.Store(true)
	time.Sleep(cfg.dur)
	stop.Store(true)
	wg.Wait()
	if d := dead.Load(); d > 0 {
		err := fmt.Errorf("%d of %d workers lost their connection", d, cfg.threads)
		if ep := firstErr.Load(); ep != nil {
			err = fmt.Errorf("%v (first: %w)", err, *ep)
		}
		return stats.Summary{}, nil, nil, err
	}

	merged := stats.NewClassedRecorder()
	for _, r := range recs {
		merged.Merge(r)
	}
	var comb *shardedkv.CombineStats
	if async != nil {
		if err := clients[0].Flush(kvserver.ClassBulk); err == nil {
			c := async.AggregateCombineStats()
			comb = &c
		}
	}
	sstats, err := clients[0].Stats()
	if err != nil {
		return merged.Summarize(name, cfg.dur), nil, comb, fmt.Errorf("server stats: %w", err)
	}
	if remoteAddr != "" {
		// A shared external server's cumulative counters cover other
		// clients and earlier rows too: rejections are re-scoped to
		// this run's own client tally, and the wait count — which has
		// no client-side analogue — is dropped rather than reported
		// on the wrong scope.
		sstats.BulkRejected = rejected.Load()
		sstats.BulkWaited = 0
	}
	return merged.Summarize(name, cfg.dur), &sstats, comb, nil
}

// benchRecord is one row of the bench trajectory: CI appends these to
// BENCH_kvbench.json per commit, so the file accumulates a
// throughput/latency history the next PR can diff against.
type benchRecord struct {
	Commit    string  `json:"commit"`
	Time      string  `json:"time"`
	Engine    string  `json:"engine"`
	Mix       string  `json:"mix"`
	Lock      string  `json:"lock"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P99Ns     int64   `json:"p99"`
	// OpsPerLockTake is the combining ratio; present only on pipe-*
	// rows, where > 1 means the combiner is actually batching.
	OpsPerLockTake float64 `json:"ops_per_lock_take,omitempty"`
	// OpsPerFsync/Fsyncs are the wal-* rows' group-commit amortisation:
	// records appended per fsync, and the fsync count itself. On
	// wal-pipe-* rows the ratio should climb with the combine batch
	// size — the whole drained batch rides one sync.
	OpsPerFsync float64 `json:"ops_per_fsync,omitempty"`
	Fsyncs      uint64  `json:"fsyncs,omitempty"`
	// Splits/ReshardEvents/Shards are the rs-* rows' resharding
	// trajectory: shards split, detector windows that split something,
	// and the final live shard count.
	Splits        uint64 `json:"splits,omitempty"`
	ReshardEvents uint64 `json:"reshard_events,omitempty"`
	Shards        int    `json:"shards,omitempty"`
	// BiasAdoptions/BiasRevocations/BiasFastAcquires are the bias-*
	// and rs-pipe-bias-* rows' biased-lock trajectory: cookies minted,
	// cookies torn down through the revocation handshake (splits and
	// foreign traffic both land here), and owner acquisitions that
	// touched only the plain-atomic fast path — no contended RMW.
	BiasAdoptions    uint64 `json:"bias_adoptions,omitempty"`
	BiasRevocations  uint64 `json:"bias_revocations,omitempty"`
	BiasFastAcquires uint64 `json:"bias_fast_acquires,omitempty"`
	// P99InteractiveNs/P99BulkNs are the net-* rows' per-SLO-class
	// client-side tails, OpsInteractive/OpsBulk the per-class measured
	// op counts; BulkWaited counts bulk admissions that queued at the
	// gate and BulkRejected the requests it shed.
	P99InteractiveNs int64  `json:"p99_interactive,omitempty"`
	P99BulkNs        int64  `json:"p99_bulk,omitempty"`
	OpsInteractive   uint64 `json:"ops_interactive,omitempty"`
	OpsBulk          uint64 `json:"ops_bulk,omitempty"`
	BulkWaited       uint64 `json:"bulk_waited,omitempty"`
	BulkRejected     uint64 `json:"bulk_rejected,omitempty"`
}

// currentCommit resolves the commit id stamped into trajectory
// records: GITHUB_SHA in CI, git itself locally, "unknown" otherwise.
func currentCommit() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		return strings.TrimSpace(string(out))
	}
	return "unknown"
}

// appendRecords loads the JSON array at path (missing or empty file =
// empty trajectory), appends recs, and writes it back.
func appendRecords(path string, recs []benchRecord) error {
	var all []benchRecord
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if uerr := json.Unmarshal(data, &all); uerr != nil {
			return fmt.Errorf("existing trajectory %s is not a record array: %w", path, uerr)
		}
	} else if err != nil && !os.IsNotExist(err) {
		return err
	}
	all = append(all, recs...)
	data, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// splitRow recovers (engine, mix, lock) from the "engine/mix/lock" row
// name built in main's grid loop.
func splitRow(name string) (engine, mix, lock string) {
	parts := strings.SplitN(name, "/", 3)
	for len(parts) < 3 {
		parts = append(parts, "")
	}
	return parts[0], parts[1], parts[2]
}

// pick filters specs by a comma-separated name list ("all" keeps all).
func pick[T any](sel string, specs []T, name func(T) string) ([]T, error) {
	if sel == "all" || sel == "" {
		return specs, nil
	}
	var out []T
	for _, want := range strings.Split(sel, ",") {
		found := false
		for _, s := range specs {
			if name(s) == strings.TrimSpace(want) {
				out = append(out, s)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown name %q", want)
		}
	}
	return out, nil
}

func main() {
	engines := flag.String("engines", "all", "comma list of hashkv|btree|skiplist|lsm, or all")
	mixes := flag.String("mixes", "all", "comma list of read|write|zipf|zipfw|batch|scan|scanbatch, or all")
	lockSel := flag.String("locks", "asl,mutex", "comma list of asl|asl-blocking|mutex|mcs|pthread, or all")
	pipeline := flag.Bool("pipeline", false, "also run a pipe-<lock> row per lock: ops routed through the flat-combining AsyncStore")
	ff := flag.Bool("ff", false, "also run a pipe-ff-<lock> row per lock: writes submitted fire-and-forget (PutAsync)")
	reshard := flag.Bool("reshard", false, "also run rs-<lock> (and, with -pipeline, rs-pipe-<lock>) rows with the skew detector splitting hot shards mid-run")
	walRows := flag.Bool("wal", false, "also run wal-<lock> (and, with -pipeline, wal-pipe-<lock>) rows on a durable store: per-shard write-ahead logs with group commit; rows report ops_per_fsync")
	bias := flag.Bool("bias", false, "also run bias-<lock> (and, with -reshard, rs-pipe-bias-<lock>) rows with biased shard locks: the dominant combiner is adopted as single owner until revoked; rows report bias_adoptions/bias_revocations")
	netMode := flag.Bool("net", false, "run the grid over the wire: net-<lock> rows drive an in-process kvserver through kvclient connections (big workers interactive, little workers bulk)")
	netAddr := flag.String("netaddr", "", "with -net: drive an EXTERNAL kvserver at this address instead (one remote/<mix>/net-remote row per mix; engine and lock are the server's)")
	netConns := flag.Int("netconns", 0, "with -net: client connections shared by the workers; 0 = one per worker")
	sloBulk := flag.Duration("slobulk", 2*time.Millisecond, "with -net: bulk-class epoch SLO on the served store (asl locks); 0 disables")
	bulkInflight := flag.Int("bulkinflight", 0, "with -net: per-shard bulk admission bound (0 = server default, negative disables the gate)")
	skew := flag.Float64("skew", 1.2, "reshard skew factor: a shard splits after sustaining this multiple of its fair ops share")
	pipeBatch := flag.Int("pipebatch", 0, "max ops a pipeline combiner executes per lock take; 0 = adaptive per-shard bound")
	jsonPath := flag.String("json", "", "append one {commit, engine, mix, lock, ops_per_sec, p99} record per row to this JSON file")
	shards := flag.Int("shards", 16, "shard count")
	threads := flag.Int("threads", 8, "total workers (first -bigs are big-class)")
	bigs := flag.Int("bigs", 4, "big-class workers")
	dur := flag.Duration("dur", 500*time.Millisecond, "measured duration per configuration")
	warmup := flag.Duration("warmup", 100*time.Millisecond, "unrecorded warmup before measurement")
	slo := flag.Duration("slo", 100*time.Microsecond, "epoch SLO for asl locks; negative disables epochs")
	keys := flag.Uint64("keys", 1<<16, "keyspace size")
	vsize := flag.Int("vsize", 64, "value size in bytes")
	batch := flag.Int("batch", 16, "keys (or ranges) per batched operation")
	span := flag.Uint64("span", 256, "key width of each range for the scan mixes")
	zipfS := flag.Float64("zipf", 0.99, "zipfian theta for the zipf mix")
	ncsGap := flag.Duration("ncs", 500*time.Nanosecond, "big-core inter-op gap (littles scaled by the shim)")
	csPad := flag.Duration("cs", 300*time.Nanosecond, "big-core critical-section pad (littles scaled by the shim); 0 disables")
	shardstats := flag.Bool("shardstats", false, "dump per-shard op counts for the last configuration")
	flag.Parse()

	if *batch < 1 {
		fmt.Fprintf(os.Stderr, "kvbench: -batch must be >= 1 (got %d)\n", *batch)
		os.Exit(2)
	}
	if *span < 1 {
		fmt.Fprintf(os.Stderr, "kvbench: -span must be >= 1 (got %d)\n", *span)
		os.Exit(2)
	}
	if *zipfS <= 0 || *zipfS >= 1 {
		fmt.Fprintf(os.Stderr, "kvbench: -zipf theta must be in (0, 1) (got %g)\n", *zipfS)
		os.Exit(2)
	}
	engs, err := pick(*engines, shardedkv.AllEngines(), func(e shardedkv.EngineSpec) string { return e.Name })
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvbench: -engines: %v\n", err)
		os.Exit(2)
	}
	mxs, err := pick(*mixes, allMixes(), func(m mixSpec) string { return m.name })
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvbench: -mixes: %v\n", err)
		os.Exit(2)
	}
	lks, err := pick(*lockSel, allLocks(), func(l lockSpec) string { return l.name })
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvbench: -locks: %v\n", err)
		os.Exit(2)
	}
	if *netMode {
		if *ff || *reshard || *walRows || *bias {
			fmt.Fprintln(os.Stderr, "kvbench: -ff/-reshard/-wal/-bias rows are local-only; ignoring them under -net")
		}
		lks = expandNetLocks(lks, *pipeline)
		if *netAddr != "" {
			// The external server fixes engine and lock; one row per mix.
			engs = []shardedkv.EngineSpec{{Name: "remote"}}
			lks = []lockSpec{{name: "net-remote", net: true}}
		}
	} else {
		lks = expandLocks(lks, *pipeline, *ff, *reshard, *walRows, *bias)
	}
	if *pipeBatch < 0 {
		fmt.Fprintf(os.Stderr, "kvbench: -pipebatch must be >= 0 (got %d; 0 = adaptive)\n", *pipeBatch)
		os.Exit(2)
	}
	if *skew <= 1 {
		fmt.Fprintf(os.Stderr, "kvbench: -skew must be > 1 (got %g)\n", *skew)
		os.Exit(2)
	}

	cal := workload.Calibrate()
	fmt.Fprintf(os.Stderr, "calibration: %.2f ns/spin-unit\n", cal.NsPerUnit)
	cfg := benchConfig{
		shards:       *shards,
		threads:      *threads,
		bigs:         *bigs,
		dur:          *dur,
		warmup:       *warmup,
		slo:          int64(*slo),
		keys:         *keys,
		vsize:        *vsize,
		batch:        *batch,
		span:         *span,
		zipfS:        *zipfS,
		ncsUnits:     cal.Units(*ncsGap),
		pipeBatch:    *pipeBatch,
		skew:         *skew,
		sloBulk:      *sloBulk,
		bulkInflight: *bulkInflight,
		netConns:     *netConns,
	}
	if *csPad > 0 {
		cfg.csUnits = cal.Units(*csPad)
	}

	commit := ""
	if *jsonPath != "" {
		commit = currentCommit()
	}
	var records []benchRecord
	var lastShards []shardedkv.ShardStats
	for _, eng := range engs {
		var rows []stats.Summary
		for _, mix := range mxs {
			for _, lk := range lks {
				mixName := mix.name
				if mix.batched {
					// Make the request size visible: P99 is per
					// batch request, ops/s is per key.
					mixName = fmt.Sprintf("%s%d", mix.name, cfg.batch)
				}
				name := fmt.Sprintf("%s/%s/%s", eng.Name, mixName, lk.name)
				var row stats.Summary
				var shardStats []shardedkv.ShardStats
				var comb *shardedkv.CombineStats
				var rs *shardedkv.ReshardStats
				var ws *wal.Stats
				var bs *locks.BiasStats
				var sstats *kvserver.ServerStats
				if lk.net {
					var err error
					row, sstats, comb, err = runNet(name, eng, mix, lk, cfg, *netAddr)
					if err != nil {
						fmt.Fprintf(os.Stderr, "kvbench: -net %s: %v\n", name, err)
						os.Exit(1)
					}
				} else {
					row, shardStats, comb, rs, ws, bs = run(name, eng, mix, lk, cfg)
					lastShards = shardStats
				}
				rows = append(rows, row)
				fmt.Fprintf(os.Stderr, "done: %s\n", name)
				if sstats != nil {
					fmt.Fprintf(os.Stderr,
						"  net: interactive p99 %s / bulk p99 %s (server-side %s / %s; bulk waited %d, rejected %d, shards %d)\n",
						time.Duration(row.BigP99), time.Duration(row.LittleP99),
						time.Duration(sstats.Interactive.P99Ns), time.Duration(sstats.Bulk.P99Ns),
						sstats.BulkWaited, sstats.BulkRejected, sstats.Shards)
				}
				if comb != nil {
					fmt.Fprintf(os.Stderr,
						"  combining: %d ops / %d takes = %.2f ops/take (direct %d, handoffs %d, depthHW %d, maxbatch %d, big/little takes %d/%d)\n",
						comb.Combined, comb.LockTakes, comb.OpsPerLockTake(),
						comb.Direct, comb.Handoffs, comb.DepthHW, comb.MaxBatchEff, comb.BigTakes, comb.LittleTakes)
				}
				if rs != nil {
					fmt.Fprintf(os.Stderr,
						"  reshard: %d splits over %d events, %d -> %d shards (map epoch %d)\n",
						rs.Splits, rs.Events, cfg.shards, rs.Shards, rs.Epoch)
				}
				if ws != nil {
					fmt.Fprintf(os.Stderr,
						"  wal: %d records / %d fsyncs = %.2f ops/fsync (%d rotations, %d bytes)\n",
						ws.Appended, ws.Syncs, ws.OpsPerFsync(), ws.Rotations, ws.Bytes)
				}
				if bs != nil {
					fmt.Fprintf(os.Stderr,
						"  bias: %d adoptions / %d revocations, %d fast + %d slow acquires (%d foreign tries)\n",
						bs.Adoptions, bs.Revocations, bs.FastAcquires, bs.SlowAcquires, bs.ForeignTries)
				}
				if *jsonPath != "" {
					engine, mixCol, lockCol := splitRow(name)
					rec := benchRecord{
						Commit:    commit,
						Time:      time.Now().UTC().Format(time.RFC3339),
						Engine:    engine,
						Mix:       mixCol,
						Lock:      lockCol,
						OpsPerSec: row.Throughput,
						P99Ns:     row.OverallP99,
					}
					if comb != nil {
						rec.OpsPerLockTake = comb.OpsPerLockTake()
					}
					if rs != nil {
						rec.Splits = rs.Splits
						rec.ReshardEvents = rs.Events
						rec.Shards = rs.Shards
					}
					if ws != nil {
						rec.OpsPerFsync = ws.OpsPerFsync()
						rec.Fsyncs = ws.Syncs
					}
					if bs != nil {
						rec.BiasAdoptions = bs.Adoptions
						rec.BiasRevocations = bs.Revocations
						rec.BiasFastAcquires = bs.FastAcquires
					}
					if sstats != nil {
						rec.P99InteractiveNs = row.BigP99
						rec.P99BulkNs = row.LittleP99
						rec.OpsInteractive = row.BigOps
						rec.OpsBulk = row.LittleOps
						rec.BulkWaited = sstats.BulkWaited
						rec.BulkRejected = sstats.BulkRejected
						rec.Shards = sstats.Shards
					}
					records = append(records, rec)
				}
			}
		}
		fmt.Print(stats.FormatSummaries(rows))
	}
	if *jsonPath != "" {
		if err := appendRecords(*jsonPath, records); err != nil {
			fmt.Fprintf(os.Stderr, "kvbench: -json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "appended %d records to %s (commit %s)\n", len(records), *jsonPath, commit)
	}
	if *shardstats && lastShards != nil {
		fmt.Println("per-shard counters (last configuration):")
		for i, s := range lastShards {
			fmt.Printf("shard %2d: gets=%d puts=%d deletes=%d scans=%d batchLocks=%d\n",
				i, s.Gets, s.Puts, s.Deletes, s.Scans, s.BatchLocks)
		}
	}
}
