// Command aslbench runs real-engine micro-benchmarks on the actual Go
// lock implementations: worker goroutines (optionally one per OS
// thread) repeatedly acquire a lock, read-modify-write shared cache
// lines and execute a calibrated delay, with the paper's asymmetry
// emulated by the class work shim. Use cmd/ampsim for the
// shape-faithful simulator reproduction of the figures.
//
// Usage:
//
//	aslbench -lock libasl -slo 100us -threads 8
//	aslbench -compare -dur 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/locks"
	"repro/internal/stats"
	"repro/internal/workload"
)

type benchConfig struct {
	threads  int
	bigs     int
	dur      time.Duration
	slo      int64
	lines    int
	ncsUnits int64
	csUnits  int64
}

// run executes one lock configuration and returns its summary row.
func run(name string, lock locks.WLock, cfg benchConfig) stats.Summary {
	shim := workload.DefaultShim()
	shared := workload.NewSharedLines(cfg.lines)
	var stop atomic.Bool
	recs := make([]*stats.ClassedRecorder, cfg.threads)
	var wg sync.WaitGroup
	for i := 0; i < cfg.threads; i++ {
		class := core.Big
		if i >= cfg.bigs {
			class = core.Little
		}
		rec := stats.NewClassedRecorder()
		recs[i] = rec
		wg.Add(1)
		go func(class core.Class) {
			defer wg.Done()
			w := core.NewWorker(core.WorkerConfig{Class: class})
			cs := shim.CSUnits(cfg.csUnits, class)
			ncs := shim.NCSUnits(cfg.ncsUnits, class)
			for !stop.Load() {
				var lat int64
				if cfg.slo >= 0 {
					w.EpochStart(0)
					lock.Acquire(w)
					shared.RMW(cfg.lines)
					workload.Spin(cs)
					lock.Release(w)
					lat = w.EpochEnd(0, cfg.slo)
				} else {
					s := w.Now()
					lock.Acquire(w)
					shared.RMW(cfg.lines)
					workload.Spin(cs)
					lock.Release(w)
					lat = w.Now() - s
				}
				rec.Record(class, lat)
				workload.Spin(ncs)
			}
		}(class)
	}
	time.Sleep(cfg.dur)
	stop.Store(true)
	wg.Wait()
	merged := stats.NewClassedRecorder()
	for _, r := range recs {
		merged.Merge(r)
	}
	return merged.Summarize(name, cfg.dur)
}

func factoryByName(name string) (locks.Factory, int64, bool) {
	switch name {
	case "pthread":
		return locks.FactoryPthread(), -1, true
	case "tas":
		return locks.FactoryTAS(core.Big, 4), -1, true
	case "ticket":
		return locks.FactoryTicket(), -1, true
	case "mcs":
		return locks.FactoryMCS(), -1, true
	case "shfl-pb10":
		return locks.FactoryProportional(10), -1, true
	case "libasl":
		return locks.FactoryASL(), 0, true // SLO overridden by flag
	case "libasl-blocking":
		return locks.FactoryASLBlocking(), 0, true
	default:
		return nil, 0, false
	}
}

func main() {
	lockName := flag.String("lock", "libasl", "pthread|tas|ticket|mcs|shfl-pb10|libasl|libasl-blocking")
	threads := flag.Int("threads", 8, "total workers (first half big-class)")
	bigs := flag.Int("bigs", 4, "big-class workers")
	dur := flag.Duration("dur", 2*time.Second, "duration per configuration")
	slo := flag.Duration("slo", 100*time.Microsecond, "epoch SLO (libasl only); 0 disables reordering")
	lines := flag.Int("lines", 4, "shared cache lines per critical section")
	compare := flag.Bool("compare", false, "run the full lock comparison")
	flag.Parse()

	cal := workload.Calibrate()
	fmt.Fprintf(os.Stderr, "calibration: %.2f ns/spin-unit\n", cal.NsPerUnit)
	cfg := benchConfig{
		threads:  *threads,
		bigs:     *bigs,
		dur:      *dur,
		lines:    *lines,
		csUnits:  cal.Units(200 * time.Nanosecond),
		ncsUnits: cal.Units(600 * time.Nanosecond),
	}

	if *compare {
		var rows []stats.Summary
		for _, name := range []string{"pthread", "tas", "ticket", "shfl-pb10", "mcs", "libasl"} {
			f, defSLO, _ := factoryByName(name)
			c := cfg
			c.slo = defSLO
			if name == "libasl" {
				c.slo = int64(*slo)
			}
			rows = append(rows, run(name, f(), c))
			fmt.Fprintf(os.Stderr, "done: %s\n", name)
		}
		fmt.Print(stats.FormatSummaries(rows))
		return
	}

	f, defSLO, ok := factoryByName(*lockName)
	if !ok {
		fmt.Fprintf(os.Stderr, "aslbench: unknown lock %q\n", *lockName)
		os.Exit(2)
	}
	cfg.slo = defSLO
	if *lockName == "libasl" || *lockName == "libasl-blocking" {
		cfg.slo = int64(*slo)
	}
	fmt.Println(run(*lockName, f(), cfg).String())
}
