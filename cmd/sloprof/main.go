// Command sloprof is the profiling tool described in §3.1 of the paper:
// for applications without a clear latency SLO, it iterates SLO
// settings inside a given range against a representative workload and
// emits the latency-throughput graph from which a suitable SLO can be
// picked. It profiles on the simulator by default (deterministic,
// AMP-faithful) or a database template with -db.
//
// Usage:
//
//	sloprof -lo 0 -hi 100us -points 11
//	sloprof -db upscaledb -hi 400us
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/stats"
)

func main() {
	db := flag.String("db", "", "profile a database template instead of Bench-1: kyoto|upscaledb|lmdb|leveldb|sqlite")
	lo := flag.Duration("lo", 0, "lowest SLO")
	hi := flag.Duration("hi", 100*time.Microsecond, "highest SLO")
	points := flag.Int("points", 11, "number of SLO settings")
	flag.Parse()

	var runOne func(slo int64) core.ProfileResult
	if *db == "" {
		runOne = func(slo int64) core.ProfileResult {
			r := figures.RunBench1ASL(slo)
			return core.ProfileResult{
				Throughput: r.Throughput,
				BigP99:     r.Epochs.ByClass(stats.Big).P99(),
				LittleP99:  r.Epochs.ByClass(stats.Little).P99(),
				OverallP99: r.Epochs.Overall().P99(),
			}
		}
	} else {
		var tpl figures.DBTemplate
		found := false
		for _, t := range figures.AllDBTemplates() {
			if t.Name == *db {
				tpl, found = t, true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "sloprof: unknown database %q\n", *db)
			os.Exit(2)
		}
		runOne = func(slo int64) core.ProfileResult {
			r := figures.RunDBASL(tpl, slo)
			return core.ProfileResult{
				Throughput: r.Throughput,
				BigP99:     r.Epochs.ByClass(stats.Big).P99(),
				LittleP99:  r.Epochs.ByClass(stats.Little).P99(),
				OverallP99: r.Epochs.Overall().P99(),
			}
		}
	}

	slos := core.SLORange(int64(*lo), int64(*hi), *points)
	pts := core.ProfileSLOs(slos, runOne)
	fmt.Print(core.FormatProfile(pts))
}
