// Command repolint is the repository's multichecker: it bundles the
// custom concurrency-contract analyzers (classhintpair, lockheldcall,
// lockorder, atomicfield, electprobe, wireconst, statustext) plus the
// stock-but-off-by-default shadow pass into one `go vet -vettool`
// binary, so the contracts documented in ARCHITECTURE.md ("Enforced
// invariants") gate every `make check` / `make ci` run. The
// fact-powered passes (lockorder, atomicfield) exchange gob-encoded
// facts across packages through vet's .vetx files, so whole-program
// properties — the lock-order graph, a field's atomicity discipline —
// are checked even though vet analyzes one package at a time.
//
// Two invocation modes:
//
//	repolint ./...           # convenience: re-execs `go vet -vettool=<self> ./...`
//	go vet -vettool=$(go env GOPATH)/... ./pkg   # driver mode (what make lint runs)
//
// In driver mode go vet hands the binary a vet.cfg per package (see
// internal/analysis/unit.go for the protocol); the convenience mode
// exists so `go run ./cmd/repolint ./internal/...` works during
// development without remembering the -vettool incantation.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/passes/atomicfield"
	"repro/internal/analysis/passes/classhintpair"
	"repro/internal/analysis/passes/electprobe"
	"repro/internal/analysis/passes/lockheldcall"
	"repro/internal/analysis/passes/lockorder"
	"repro/internal/analysis/passes/shadow"
	"repro/internal/analysis/passes/statustext"
	"repro/internal/analysis/passes/wireconst"
)

// Analyzers is the gating suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	classhintpair.Analyzer,
	lockheldcall.Analyzer,
	lockorder.Analyzer,
	atomicfield.Analyzer,
	electprobe.Analyzer,
	wireconst.Analyzer,
	statustext.Analyzer,
	shadow.Analyzer,
}

func main() {
	if patterns := packagePatterns(os.Args[1:]); patterns != nil {
		os.Exit(reExecGoVet(patterns))
	}
	analysis.Main(Analyzers...)
}

// packagePatterns reports whether the arguments are package patterns
// (./..., repro/internal/foo) rather than the go vet driver protocol
// (-flags, -V=full, or a path to a vet.cfg file).
func packagePatterns(args []string) []string {
	if len(args) == 0 {
		return nil
	}
	for _, a := range args {
		if strings.HasPrefix(a, "-") || strings.HasSuffix(a, ".cfg") {
			return nil
		}
	}
	return args
}

// reExecGoVet runs the suite over package patterns by re-invoking
// go vet with this binary as the vettool — one loading path (the
// driver protocol) no matter how repolint is launched.
func reExecGoVet(patterns []string) int {
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	return 0
}
