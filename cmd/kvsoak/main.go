// Command kvsoak is the minutes-long chaos/soak harness for the
// kvserver stack: it boots a real kvserver binary, hammers it with
// mixed-SLO-class traffic through retrying clients, and keeps breaking
// things underneath — kill -9 and restart on a seeded schedule,
// injected WAL fsync faults (degraded-mode incarnations), injected
// client-connection faults, forced shard splits, and a protocol fuzzer
// spraying garbage frames — while checking every read against a
// wire-level single-writer-per-key model.
//
// The model: each worker owns a contiguous key block and is its only
// writer, so valid read values are exactly predictable. Values encode
// (key, version); per key the worker tracks
//
//   - issuedMax: the highest version ever attempted,
//   - dfloor:    the durability floor — the highest version whose
//     durability the server PROMISED (an interactive ack is promised at
//     group commit; a bulk ack is promised by the next successful
//     Flush),
//   - zombies:   versions whose outcome is indeterminate (the op
//     failed, or retried internally, so a duplicate frame may still
//     apply arbitrarily late).
//
// Every read must then decode to a version v with dfloor <= v <=
// issuedMax, or to a zombie version; a key with dfloor > 0 may never
// read absent. Anything else is a violation: a lost sync-acked write,
// a resurrected value, or cross-key corruption. kvsoak exits non-zero
// on any violation and prints a summary either way.
//
// Usage:
//
//	kvsoak -server ./kvserver -dur 60s -seed 1
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/kvclient"
	"repro/internal/kvmodel"
	"repro/internal/kvserver"
	"repro/internal/prng"
	"repro/internal/shardedkv"
)

func main() {
	server := flag.String("server", "", "path to the kvserver binary (required)")
	dur := flag.Duration("dur", 60*time.Second, "chaos phase duration")
	seed := flag.Uint64("seed", 1, "seed for the kill schedule, fault specs, and workloads")
	workers := flag.Int("workers", 8, "concurrent client workers (even=interactive, odd=bulk)")
	keysPer := flag.Int("keys", 128, "modeled keys per worker")
	verbose := flag.Bool("v", false, "log every chaos event")
	flag.Parse()
	if *server == "" {
		fmt.Fprintln(os.Stderr, "kvsoak: -server is required")
		os.Exit(2)
	}
	h := newHarness(*server, *seed, *workers, *keysPer, *verbose)
	if ok := h.run(*dur); !ok {
		os.Exit(1)
	}
}

// violation is one model breach, recorded with enough context to chase.
type violation struct {
	when time.Time
	what string
}

type harness struct {
	bin     string
	seed    uint64
	workers int
	keysPer int
	verbose bool

	addr   string
	walDir string
	logDir string

	rng *prng.SplitMix64 // chaos schedule; main goroutine only

	mu         sync.Mutex
	violations []violation

	ops      atomic.Uint64 // completed (acked) operations
	failed   atomic.Uint64 // operations that exhausted retries
	restarts atomic.Uint64

	proc     *exec.Cmd
	procLog  *os.File
	procIncr int
}

func newHarness(bin string, seed uint64, workers, keysPer int, verbose bool) *harness {
	tmp, err := os.MkdirTemp("", "kvsoak-")
	if err != nil {
		fatalf("tmp dir: %v", err)
	}
	return &harness{
		bin: bin, seed: seed, workers: workers, keysPer: keysPer, verbose: verbose,
		walDir: filepath.Join(tmp, "wal"), logDir: tmp,
		rng: prng.NewSplitMix64(seed),
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "kvsoak: "+format+"\n", args...)
	os.Exit(1)
}

func (h *harness) logf(format string, args ...any) {
	if h.verbose {
		fmt.Fprintf(os.Stderr, "kvsoak: "+format+"\n", args...)
	}
}

func (h *harness) report(format string, args ...any) {
	h.mu.Lock()
	h.violations = append(h.violations, violation{when: time.Now(), what: fmt.Sprintf(format, args...)})
	n := len(h.violations)
	h.mu.Unlock()
	if n <= 20 {
		fmt.Fprintf(os.Stderr, "kvsoak: VIOLATION: "+format+"\n", args...)
	}
}

// pickAddr reserves a listen address once; every server incarnation
// reuses it so clients reconnect to the same place across kill -9s.
func (h *harness) pickAddr() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("pick addr: %v", err)
	}
	h.addr = ln.Addr().String()
	ln.Close()
}

// startServer launches one incarnation. faults, when non-empty, is
// passed through to the server's -faults flag (seeded fault
// injection in its WAL stack). Blocks until the server reports
// "serving ... on <addr>" on stderr or a timeout.
func (h *harness) startServer(faults string) {
	h.procIncr++
	logPath := filepath.Join(h.logDir, fmt.Sprintf("server-%02d.log", h.procIncr))
	lf, err := os.Create(logPath)
	if err != nil {
		fatalf("server log: %v", err)
	}
	args := []string{
		"-addr", h.addr,
		"-wal", h.walDir,
		"-shards", "4",
		"-force-split-every", "25ms",
	}
	if faults != "" {
		args = append(args, "-faults", faults, "-fault-seed", fmt.Sprint(h.rng.Uint64()|1))
	}
	cmd := exec.Command(h.bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		fatalf("start server: %v", err)
	}
	ready := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(stderr)
		signaled := false
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(lf, line)
			if !signaled && strings.Contains(line, "serving") && strings.Contains(line, h.addr) {
				signaled = true
				close(ready)
			}
		}
		lf.Close()
	}()
	select {
	case <-ready:
	case <-time.After(15 * time.Second):
		fatalf("server incarnation %d never became ready; log: %s", h.procIncr, logPath)
	}
	h.proc, h.procLog = cmd, lf
	h.logf("incarnation %d up (faults=%q)", h.procIncr, faults)
}

// kill9 SIGKILLs the current incarnation and reaps it — the crash the
// WAL's group commit is supposed to survive.
func (h *harness) kill9() {
	h.proc.Process.Kill()
	h.proc.Wait()
	h.restarts.Add(1)
	h.logf("incarnation %d killed (-9)", h.procIncr)
}

// shutdown asks the current incarnation to exit cleanly (SIGTERM,
// which syncs and closes every shard log).
func (h *harness) shutdown() {
	h.proc.Process.Signal(syscall.SIGTERM)
	h.proc.Wait()
	h.logf("incarnation %d shut down cleanly", h.procIncr)
}

// keyState is the single-writer model for one key (see package doc).
type keyState struct {
	issuedMax uint64
	dfloor    uint64
	bulkAcked uint64          // highest bulk-acked version awaiting a Flush promise
	bulkGen   uint64          // connection generation bulkAcked rode on
	zombies   map[uint64]bool // indeterminate versions; nil until first use
}

func (ks *keyState) zombie(v uint64) {
	if ks.zombies == nil {
		ks.zombies = map[uint64]bool{}
	}
	ks.zombies[v] = true
}

// valid reports whether reading version v (present=true) or absence
// (present=false) is allowed.
func (ks *keyState) valid(v uint64, present bool) bool {
	if !present {
		return ks.dfloor == 0
	}
	if v >= ks.dfloor && v <= ks.issuedMax {
		return true
	}
	return ks.zombies[v]
}

// worker drives one client against its own key block until stop
// closes, checking every read. wi's parity picks the SLO class.
func (h *harness) worker(wi int, stop <-chan struct{}, done *sync.WaitGroup, states []*keyState) {
	defer done.Done()
	class := uint8(kvserver.ClassInteractive)
	if wi%2 == 1 {
		class = kvserver.ClassBulk
	}
	connReg := fault.New(h.seed + uint64(wi)*1000 + 7)
	if wi%4 == 3 {
		// A quarter of the fleet reads and writes through a faulty NIC:
		// rare injected connection errors exercise the reconnect path
		// even between server kills.
		connReg.MustAdd(fault.Rule{Point: "conn.read", Prob: 0.002, Act: fault.ActError})
		connReg.MustAdd(fault.Rule{Point: "conn.write", Prob: 0.002, Act: fault.ActError})
	}
	cl := kvclient.NewRetrying(h.addr, kvclient.RetryConfig{
		MaxAttempts:    6,
		RequestTimeout: 2 * time.Second,
		DialTimeout:    3 * time.Second,
		Seed:           h.seed + uint64(wi),
		WrapConn:       func(c net.Conn) net.Conn { return fault.WrapConn(c, connReg) },
	})
	defer cl.Close()
	rng := prng.NewSplitMix64(h.seed*0x9e3779b97f4a7c15 + uint64(wi))
	base := uint64(wi * h.keysPer)
	key := func(j int) uint64 { return base + uint64(j) }

	checkRead := func(k uint64, v []byte, present bool, via string) {
		ks := states[k-base]
		if !present {
			if !ks.valid(0, false) {
				h.report("worker %d: %s(%d) absent but durability floor is v%d", wi, via, k, ks.dfloor)
			}
			return
		}
		ver, ok := kvmodel.DecodeVerValue(k, v)
		if !ok {
			h.report("worker %d: %s(%d) returned foreign bytes %x", wi, via, k, v)
			return
		}
		if !ks.valid(ver, true) {
			h.report("worker %d: %s(%d) = v%d, want v in [%d..%d] or a zombie (lost sync-acked write)",
				wi, via, k, ver, ks.dfloor, ks.issuedMax)
		}
	}

	for {
		select {
		case <-stop:
			return
		default:
		}
		j := int(rng.Uint64()) % h.keysPer
		if j < 0 {
			j += h.keysPer
		}
		k := key(j)
		ks := states[j]
		switch rng.Uint64() % 10 {
		case 0, 1, 2, 3, 4: // write
			ks.issuedMax++
			v := ks.issuedMax
			_, err := cl.Put(class, k, kvmodel.VerValue(k, v))
			attempts := cl.Attempts()
			if err != nil {
				ks.zombie(v)
				h.failed.Add(1)
				continue
			}
			if attempts > 1 {
				// Acked, but an earlier attempt's frame may still be
				// buffered server-side and re-apply v after v+1 lands.
				ks.zombie(v)
			}
			if class == kvserver.ClassInteractive {
				ks.dfloor = v // sync-waited: durable at ack
			} else if v > ks.bulkAcked {
				// Durable at the next successful Flush on the SAME
				// connection generation: a Flush acked by a later
				// incarnation never saw this write.
				ks.bulkAcked, ks.bulkGen = v, cl.LastGen()
			}
			h.ops.Add(1)
		case 5, 6, 7: // read
			v, found, err := cl.Get(class, k)
			if err != nil {
				h.failed.Add(1)
				continue
			}
			checkRead(k, v, found, "Get")
			h.ops.Add(1)
		case 8: // batched read over a few owned keys
			n := int(rng.Uint64()%4) + 2
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = key(int(rng.Uint64() % uint64(h.keysPer)))
			}
			vals, found, err := cl.MultiGet(class, keys)
			if err != nil {
				h.failed.Add(1)
				continue
			}
			for i, kk := range keys {
				checkRead(kk, vals[i], found[i], "MultiGet")
			}
			h.ops.Add(1)
		default: // flush: the bulk durability barrier
			// Snapshot what each key had bulk-acked BEFORE issuing: the
			// barrier only promises writes applied before it ran.
			type snap struct{ ver, gen uint64 }
			snaps := make([]snap, h.keysPer)
			for i, s := range states {
				snaps[i] = snap{s.bulkAcked, s.bulkGen}
			}
			if err := cl.Flush(class); err != nil {
				h.failed.Add(1)
				continue
			}
			// Promote only writes acked on the connection generation the
			// Flush itself completed on: same generation = same server
			// process and same FIFO connection, so the barrier provably
			// covers the ack. An ack from an older generation died with
			// its incarnation and gets no promise here.
			fgen := cl.LastGen()
			for i, s := range states {
				if snaps[i].gen == fgen && snaps[i].ver > s.dfloor {
					s.dfloor = snaps[i].ver
				}
			}
			h.ops.Add(1)
		}
	}
}

// fuzz sprays protocol garbage at the server: correct magic followed
// by hostile frames, and no magic at all. The server must drop the
// connection every time and never wedge or crash.
func (h *harness) fuzz(stop <-chan struct{}, done *sync.WaitGroup) {
	defer done.Done()
	rng := prng.NewSplitMix64(h.seed ^ 0xf022)
	for {
		select {
		case <-stop:
			return
		case <-time.After(150 * time.Millisecond):
		}
		conn, err := net.DialTimeout("tcp", h.addr, time.Second)
		if err != nil {
			continue // server mid-restart
		}
		if rng.Uint64()%2 == 0 {
			conn.Write([]byte(kvserver.Magic))
		}
		junk := make([]byte, int(rng.Uint64()%512)+4)
		for i := range junk {
			junk[i] = byte(rng.Uint64())
		}
		conn.Write(junk)
		conn.SetReadDeadline(time.Now().Add(time.Second))
		var buf [256]byte
		conn.Read(buf[:]) // drain whatever error frame comes back
		conn.Close()
	}
}

// run executes the chaos phase for dur, then a clean-restart final
// sweep. Returns true when the model held end to end.
func (h *harness) run(dur time.Duration) bool {
	h.pickAddr()
	states := make([][]*keyState, h.workers)
	for wi := range states {
		states[wi] = make([]*keyState, h.keysPer)
		for j := range states[wi] {
			states[wi][j] = &keyState{}
		}
	}

	h.startServer("")
	stop := make(chan struct{})
	var done sync.WaitGroup
	for wi := 0; wi < h.workers; wi++ {
		done.Add(1)
		go h.worker(wi, stop, &done, states[wi])
	}
	done.Add(1)
	go h.fuzz(stop, &done)

	// Chaos loop: let one incarnation serve for a seeded 5–15s, kill it
	// -9, restart — alternating clean incarnations with ones whose WAL
	// fsync is rigged to start failing mid-run (degraded mode).
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		serve := 5*time.Second + time.Duration(h.rng.Uint64()%uint64(10*time.Second))
		if rem := time.Until(deadline); serve > rem {
			serve = rem
		}
		if serve > 0 {
			time.Sleep(serve)
		}
		if time.Now().Before(deadline) {
			h.kill9()
			faults := ""
			if h.procIncr%2 == 1 {
				// Every other incarnation loses an fsync partway in and
				// must flip the hit shards to degraded-mode serving.
				faults = fmt.Sprintf("wal.fsync:nth=%d:error", 40+h.rng.Uint64()%160)
			}
			h.startServer(faults)
		}
	}

	// Stop the traffic, then give the final incarnation a clean life:
	// kill the (possibly degraded) current one, restart fault-free, and
	// sweep every modeled key against the durability floor.
	close(stop)
	done.Wait()
	h.kill9()
	h.startServer("")
	h.finalSweep(states)
	h.shutdown()

	ops, failed, restarts := h.ops.Load(), h.failed.Load(), h.restarts.Load()
	h.mu.Lock()
	nviol := len(h.violations)
	h.mu.Unlock()
	fmt.Printf("kvsoak: %d ops acked, %d ops exhausted retries, %d kill -9 restarts, %d violations (seed %d)\n",
		ops, failed, restarts, nviol, h.seed)
	if nviol > 0 {
		fmt.Printf("kvsoak: FAILED — server logs in %s\n", h.logDir)
		return false
	}
	if ops < uint64(h.workers*20) {
		fmt.Printf("kvsoak: FAILED — only %d ops acked; the server wedged or clients never connected (logs in %s)\n",
			ops, h.logDir)
		return false
	}
	os.RemoveAll(h.logDir)
	fmt.Println("kvsoak: PASS — no sync-acked write lost, no model violation")
	return true
}

// finalSweep reads every modeled key through a fresh, fault-free
// client against the recovered server: the replayed store must honor
// every durability promise made across every incarnation.
func (h *harness) finalSweep(states [][]*keyState) {
	cl := kvclient.NewRetrying(h.addr, kvclient.RetryConfig{
		MaxAttempts: 8, RequestTimeout: 5 * time.Second, DialTimeout: 5 * time.Second, Seed: h.seed + 99,
	})
	defer cl.Close()
	if err := cl.Flush(kvserver.ClassInteractive); err != nil {
		h.report("final sweep: Flush failed: %v", err)
	}
	checked := 0
	for wi, ws := range states {
		base := uint64(wi * h.keysPer)
		for j, ks := range ws {
			k := base + uint64(j)
			v, found, err := cl.Get(kvserver.ClassInteractive, k)
			if err != nil {
				h.report("final sweep: Get(%d) failed after recovery: %v", k, err)
				continue
			}
			checked++
			if !found {
				if ks.dfloor != 0 {
					h.report("final sweep: key %d absent, durability floor v%d lost", k, ks.dfloor)
				}
				continue
			}
			ver, ok := kvmodel.DecodeVerValue(k, v)
			if !ok {
				h.report("final sweep: key %d holds foreign bytes %x", k, v)
				continue
			}
			if !ks.valid(ver, true) {
				h.report("final sweep: key %d = v%d, durability floor v%d (lost sync-acked write)", k, ver, ks.dfloor)
			}
		}
	}
	// An ordered range over the whole modeled space double-checks the
	// store's scan path post-recovery (and that splits survived replay).
	total := uint64(h.workers * h.keysPer)
	kvs, _, err := rangeAll(cl, total)
	if err != nil {
		h.report("final sweep: Range failed: %v", err)
		return
	}
	if !sort.SliceIsSorted(kvs, func(a, b int) bool { return kvs[a].Key < kvs[b].Key }) {
		h.report("final sweep: Range emitted keys out of order")
	}
	h.logf("final sweep: %d keys checked, %d live", checked, len(kvs))
}

func rangeAll(cl *kvclient.Retrying, hi uint64) ([]shardedkv.Pair, bool, error) {
	var all []shardedkv.Pair
	lo := uint64(0)
	for {
		kvs, more, err := cl.Range(kvserver.ClassInteractive, lo, hi, 0)
		if err != nil {
			return all, false, err
		}
		all = append(all, kvs...)
		if !more || len(kvs) == 0 {
			return all, false, nil
		}
		lo = kvs[len(kvs)-1].Key + 1
	}
}
