// Command kvserver serves the sharded asymmetry-aware KV store over
// TCP with the binary protocol of docs/protocol.md. Every request
// carries an SLO class byte: interactive requests run big-class at the
// shard lock (ASL fast path; elect/combine/spin under -pipeline), bulk
// requests run little-class (reorder standby; enqueue/park) and pass a
// bounded per-shard admission gate — the paper's asymmetry-aware
// admission applied per request at the serving boundary.
//
// Usage:
//
//	kvserver                                   # hashkv engine, ASL shard locks, :7877
//	kvserver -addr :7900 -engine lsm -lock asl -shards 32
//	kvserver -pipeline                         # ops routed through the combining AsyncStore
//	kvserver -slo-interactive 100us -slo-bulk 2ms -bulk-inflight 4
//	kvserver -cs 1us                           # AMP critical-section emulation (benchmarks)
//	kvserver -wal /var/lib/kv/wal              # durable: replay on start, per-class group commit
//
// With -wal set, interactive requests ack only after their record's
// group commit; bulk requests ack async and are durable with a later
// batch, an OpFlush, or shutdown (see docs/protocol.md).
//
// The server shuts down cleanly on SIGINT/SIGTERM: the listener
// closes, in-flight requests finish, final stats print to stderr, and
// the process exits 0 — the contract `make net-smoke` asserts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/kvserver"
	"repro/internal/locks"
	"repro/internal/shardedkv"
	"repro/internal/wal"
	"repro/internal/workload"
)

// lockFactories names the serving lock choices (the kvbench comparison
// set minus nothing: any WLock can guard a shard).
func lockFactories() map[string]locks.Factory {
	return map[string]locks.Factory{
		"asl":          locks.FactoryASL(),
		"asl-blocking": locks.FactoryASLBlocking(),
		"mutex":        locks.FactorySyncMutex(),
		"mcs":          locks.FactoryMCS(),
		"pthread":      locks.FactoryPthread(),
	}
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7877", "listen address")
	engine := flag.String("engine", "hashkv", "storage engine: hashkv|btree|skiplist|lsm")
	lock := flag.String("lock", "asl", "shard lock: asl|asl-blocking|mutex|mcs|pthread")
	shards := flag.Int("shards", 16, "shard count")
	pipeline := flag.Bool("pipeline", false, "route operations through the flat-combining AsyncStore")
	pipeBatch := flag.Int("pipebatch", 0, "combiner drain bound; 0 = adaptive")
	sloInteractive := flag.Duration("slo-interactive", 100*time.Microsecond, "interactive-class epoch SLO; 0 disables epochs for the class")
	sloBulk := flag.Duration("slo-bulk", 2*time.Millisecond, "bulk-class epoch SLO; 0 disables epochs for the class")
	bulkInflight := flag.Int("bulk-inflight", 0, "max in-flight bulk ops per shard (0 = default, negative disables the gate)")
	bulkWaiters := flag.Int("bulk-waiters", 0, "max waiting bulk ops per shard before rejection (0 = 4x inflight)")
	csPad := flag.Duration("cs", 0, "AMP emulation: big-core critical-section pad, littles scaled by the shim; 0 disables (production)")
	walDir := flag.String("wal", "", "write-ahead-log root directory; enables durability (recovery on start, group commit while serving)")
	walSegment := flag.Int64("wal-segment", 0, "WAL segment rotation threshold in bytes; 0 = default")
	statsEvery := flag.Duration("stats-every", 0, "dump server stats to stderr at this interval; 0 disables")
	faults := flag.String("faults", "", "fault-injection spec, e.g. 'wal.fsync:nth=3:error' (see internal/fault.Parse); chaos harness only")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for probabilistic fault triggers")
	forceSplitEvery := flag.Duration("force-split-every", 0, "force a shard split at this interval, cycling target keys; 0 disables (chaos harness only)")
	flag.Parse()

	var engSpec *shardedkv.EngineSpec
	for _, e := range shardedkv.AllEngines() {
		if e.Name == *engine {
			engSpec = &e
			break
		}
	}
	if engSpec == nil {
		fmt.Fprintf(os.Stderr, "kvserver: unknown -engine %q\n", *engine)
		os.Exit(2)
	}
	lf, ok := lockFactories()[*lock]
	if !ok {
		fmt.Fprintf(os.Stderr, "kvserver: unknown -lock %q\n", *lock)
		os.Exit(2)
	}

	scfg := shardedkv.Config{Shards: *shards, NewEngine: engSpec.New, NewLock: lf}
	if *csPad > 0 {
		shim := workload.DefaultShim()
		cal := workload.Calibrate()
		units := cal.Units(*csPad)
		scfg.CSPad = func(w *core.Worker) {
			workload.Spin(shim.CSUnits(units, w.Class()))
		}
	}
	var reg *fault.Registry
	if *faults != "" {
		var err error
		reg, err = fault.Parse(*faultSeed, *faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kvserver: -faults: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "kvserver: fault injection armed: %s (seed %d)\n", *faults, *faultSeed)
	}
	if *walDir != "" {
		// Default policies: interactive requests ack after their group
		// commit, bulk requests ack async (durable with a later batch
		// or OpFlush). The wire class byte picks the policy end-to-end.
		scfg.Durability = &shardedkv.DurabilityConfig{
			Dir:          *walDir,
			SegmentBytes: *walSegment,
		}
		if reg != nil {
			scfg.Durability.FS = wal.FaultFS{Reg: reg}
		}
		fmt.Fprintf(os.Stderr, "kvserver: wal %s — recovering\n", *walDir)
	}
	if *forceSplitEvery > 0 {
		// The chaos harness wants splits mid-traffic without waiting for
		// the skew detector; manual mode with a budget keeps them
		// deterministic-ish and bounded.
		scfg.Reshard = &shardedkv.ReshardConfig{Manual: true, MaxShards: *shards * 4}
	}
	st := shardedkv.New(scfg)
	var async *shardedkv.AsyncStore
	if *pipeline {
		async = shardedkv.NewAsync(st, shardedkv.AsyncConfig{MaxBatch: *pipeBatch})
	}

	srv, err := kvserver.New(kvserver.Config{
		Store:          st,
		Async:          async,
		SLOInteractive: *sloInteractive,
		SLOBulk:        *sloBulk,
		Admission: kvserver.AdmissionConfig{
			BulkPerShard: *bulkInflight,
			BulkWaiters:  *bulkWaiters,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: %v\n", err)
		os.Exit(1)
	}
	if err := srv.Listen(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "kvserver: serving %s/%s (%d shards, pipeline=%v) on %s\n",
		*engine, *lock, *shards, *pipeline, srv.Addr())

	if *forceSplitEvery > 0 {
		go func() {
			w := core.NewWorker(core.WorkerConfig{Class: core.Big})
			for i := uint64(0); ; i++ {
				time.Sleep(*forceSplitEvery)
				st.ForceSplit(w, i%1024)
			}
		}()
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				dumpStats(srv)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "kvserver: %v — shutting down\n", got)
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: close: %v\n", err)
		os.Exit(1)
	}
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	if async != nil {
		async.Close(w)
	}
	// Store.Close syncs and closes every shard log, so async-acked bulk
	// writes are durable before the process exits.
	st.Close(w)
	if *walDir != "" {
		ws := st.WalStats()
		fmt.Fprintf(os.Stderr, "kvserver: wal %d records / %d fsyncs = %.2f ops/fsync (%d rotations, %d bytes)\n",
			ws.Appended, ws.Syncs, ws.OpsPerFsync(), ws.Rotations, ws.Bytes)
	}
	dumpStats(srv)
	fmt.Fprintln(os.Stderr, "kvserver: clean shutdown")
}

func dumpStats(srv *kvserver.Server) {
	body, err := json.Marshal(srv.Stats())
	if err != nil {
		fmt.Fprintf(os.Stderr, "kvserver: stats: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "kvserver: stats %s\n", body)
}
