// Package repro's benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation, each regenerating its
// experiment on the deterministic AMP simulator and reporting the
// headline metrics via b.ReportMetric, plus real-lock micro-benchmarks
// and the ablation benches called out in DESIGN.md §5.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// A single figure:
//
//	go test -bench=BenchmarkFig8a
package repro

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/locks"
	"repro/internal/stats"
)

// benchDur keeps each simulated experiment short enough for the bench
// harness while leaving thousands of epochs per configuration.
const (
	benchDur    = int64(60_000_000) // 60 ms virtual
	benchWarmup = int64(15_000_000)
)

// reportRun runs one simulator configuration per b.N iteration and
// reports simulated throughput and P99s. The figure benchmarks measure
// the experiment, not the host, so wall-clock ns/op is just the cost
// of regenerating the figure.
func reportRun(b *testing.B, cfg figures.MicroConfig) {
	b.Helper()
	cfg.Duration = benchDur
	cfg.Warmup = benchWarmup
	var last *figures.MicroResult
	for i := 0; i < b.N; i++ {
		last = figures.RunMicro(cfg)
	}
	b.ReportMetric(last.Throughput, "sim-ops/s")
	b.ReportMetric(float64(last.Epochs.Overall().P99()), "sim-p99-ns")
	b.ReportMetric(float64(last.Epochs.ByClass(stats.Little).P99()), "sim-littlep99-ns")
}

// --- Figure 1 and 4: the collapse study -----------------------------

func BenchmarkFig1MCS8Threads(b *testing.B) {
	reportRun(b, figures.CollapseConfig(8, 4, figures.KindMCS, false))
}

func BenchmarkFig1TASLittleAffinity(b *testing.B) {
	reportRun(b, figures.CollapseConfig(8, 4, figures.KindTAS, false))
}

func BenchmarkFig4TASBigAffinity(b *testing.B) {
	reportRun(b, figures.CollapseConfig(8, 64, figures.KindTAS, true))
}

// --- Figure 5: static proportions -----------------------------------

func BenchmarkFig5ProportionPB10(b *testing.B) {
	cfg := figures.Bench1Config(figures.KindSHFLPB, -1)
	cfg.PBn = 10
	reportRun(b, cfg)
}

// --- Figure 8: micro-benchmarks -------------------------------------

func BenchmarkFig8aMCS(b *testing.B)     { reportRun(b, figures.Bench1Config(figures.KindMCS, -1)) }
func BenchmarkFig8aTAS(b *testing.B)     { reportRun(b, figures.Bench1Config(figures.KindTAS, -1)) }
func BenchmarkFig8aPthread(b *testing.B) { reportRun(b, figures.Bench1Config(figures.KindPthread, -1)) }
func BenchmarkFig8aASL50us(b *testing.B) {
	reportRun(b, figures.Bench1Config(figures.KindASL, 50_000))
}
func BenchmarkFig8aASLMax(b *testing.B) { reportRun(b, figures.Bench1Config(figures.KindASL, -1)) }

func BenchmarkFig8bSLOSweepPoint(b *testing.B) {
	reportRun(b, figures.Bench1Config(figures.KindASL, 80_000))
}

func BenchmarkFig8cMixedEpochs(b *testing.B) {
	reportRun(b, figures.Bench3Config(figures.KindASL, 100_000, 0.5, 31))
}

func BenchmarkFig8dAdaptivityTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tr := figures.Fig8d()
		b.ReportMetric(float64(tr.Len()), "trace-samples")
	}
}

func BenchmarkFig8eScalability8(b *testing.B) {
	reportRun(b, figures.CollapseConfig(8, 64, figures.KindASL, true))
}

func BenchmarkFig8gContentionHigh(b *testing.B) {
	cfg := figures.Bench1Config(figures.KindASL, -1)
	cfg.NCS = 1 // back-to-back acquisitions
	reportRun(b, cfg)
}

func BenchmarkFig8hOversubPthread(b *testing.B) {
	reportRun(b, figures.OversubConfig(figures.KindPthread, -1))
}

func BenchmarkFig8hOversubMCSSTP(b *testing.B) {
	reportRun(b, figures.OversubConfig(figures.KindMCSSTP, -1))
}

func BenchmarkFig8hOversubASL3ms(b *testing.B) {
	reportRun(b, figures.OversubConfig(figures.KindASL, 3_000_000))
}

func BenchmarkFig8iOversubSweepPoint(b *testing.B) {
	reportRun(b, figures.OversubConfig(figures.KindASL, 5_000_000))
}

// --- Figures 9 and 10: the databases --------------------------------

func benchDB(b *testing.B, tpl figures.DBTemplate, kind figures.LockKind, slo int64) {
	b.Helper()
	cfg := figures.DBConfig(tpl, kind, slo, 91)
	reportRun(b, cfg)
}

func BenchmarkFig9KyotoMCS(b *testing.B) { benchDB(b, figures.KyotoTemplate(), figures.KindMCS, -1) }
func BenchmarkFig9KyotoASL(b *testing.B) {
	benchDB(b, figures.KyotoTemplate(), figures.KindASL, 70_000)
}
func BenchmarkFig9UpscaleTAS(b *testing.B) {
	benchDB(b, figures.UpscaleTemplate(), figures.KindTAS, -1)
}
func BenchmarkFig9UpscaleASL(b *testing.B) {
	benchDB(b, figures.UpscaleTemplate(), figures.KindASL, 140_000)
}
func BenchmarkFig9LMDBASL(b *testing.B) {
	benchDB(b, figures.LMDBTemplate(), figures.KindASL, 600_000)
}
func BenchmarkFig10LevelDBASL(b *testing.B) {
	benchDB(b, figures.LevelDBTemplate(), figures.KindASL, 100_000)
}
func BenchmarkFig10SQLiteASL(b *testing.B) {
	benchDB(b, figures.SQLiteTemplate(), figures.KindASL, 4_000_000)
}

// --- Ablations (DESIGN.md §5) ----------------------------------------

func BenchmarkAblationBackoffExponential(b *testing.B) {
	reportRun(b, figures.Bench1Config(figures.KindASL, 80_000))
}

func BenchmarkAblationBackoffFixedPoll(b *testing.B) {
	cfg := figures.Bench1Config(figures.KindASL, 80_000)
	cfg.ASLFixedPoll = true
	reportRun(b, cfg)
}

func BenchmarkAblationControllerAIMD(b *testing.B) {
	reportRun(b, figures.Bench1Config(figures.KindASL, 80_000))
}

func BenchmarkAblationControllerAdditive(b *testing.B) {
	cfg := figures.Bench1Config(figures.KindASL, 80_000)
	cfg.Controller = func() core.Controller { return core.NewAdditive(core.AIMDConfig{}) }
	reportRun(b, cfg)
}

func BenchmarkAblationControllerMultiplicative(b *testing.B) {
	cfg := figures.Bench1Config(figures.KindASL, 80_000)
	cfg.Controller = func() core.Controller { return core.NewMultiplicative(core.AIMDConfig{}) }
	reportRun(b, cfg)
}

func BenchmarkAblationBaseLockMCS(b *testing.B) {
	reportRun(b, figures.Bench1Config(figures.KindASL, 80_000))
}

func BenchmarkAblationBaseLockTicket(b *testing.B) {
	cfg := figures.Bench1Config(figures.KindASL, 80_000)
	cfg.ASLBaseTicket = true
	reportRun(b, cfg)
}

func BenchmarkAblationPercentileP90(b *testing.B) {
	cfg := figures.Bench1Config(figures.KindASL, 80_000)
	cfg.Controller = func() core.Controller { return core.NewAIMD(core.AIMDConfig{Percentile: 90}) }
	reportRun(b, cfg)
}

// --- Real lock micro-benchmarks (host hardware) ----------------------

func benchRealLock(b *testing.B, l interface {
	Lock()
	Unlock()
}) {
	b.Helper()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Lock()
			l.Unlock()
		}
	})
}

func BenchmarkRealLockTAS(b *testing.B)     { benchRealLock(b, new(locks.TAS)) }
func BenchmarkRealLockTTAS(b *testing.B)    { benchRealLock(b, new(locks.TTAS)) }
func BenchmarkRealLockTicket(b *testing.B)  { benchRealLock(b, new(locks.Ticket)) }
func BenchmarkRealLockMCS(b *testing.B)     { benchRealLock(b, new(locks.MCS)) }
func BenchmarkRealLockBarging(b *testing.B) { benchRealLock(b, new(locks.BargingMutex)) }

func BenchmarkRealLockASLUncontended(b *testing.B) {
	m := locks.NewASLMutexDefault()
	w := core.NewWorker(core.WorkerConfig{Class: core.Big})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lock(w)
		m.Unlock(w)
	}
}

func BenchmarkEpochOverhead(b *testing.B) {
	// The paper reports ~93 cycles per epoch pair; this measures our
	// EpochStart/EpochEnd cost.
	w := core.NewWorker(core.WorkerConfig{Class: core.Little})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.EpochStart(0)
		w.EpochEnd(0, int64(time.Millisecond))
	}
}
