// Package repro is a from-scratch Go reproduction of "Asymmetry-aware
// Scalable Locking" (LibASL, PPoPP 2022). The implementation lives under
// internal/: internal/core holds the engine-independent LibASL logic
// (epoch registry and AIMD reorder-window controller), internal/locks
// holds real Go lock implementations including the reorderable lock and
// ASLMutex, and internal/sim + internal/amp + internal/simlock form a
// deterministic discrete-event AMP simulator used to regenerate the
// paper's figures. See DESIGN.md for the full system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
//
// On top of the lock reproduction sits a serving layer,
// internal/shardedkv: a sharded KV store in which every shard pairs
// one lock (an ASLMutex by default, so admission follows the paper's
// big/little policy per shard) with one pluggable storage engine
// (internal/storage/{hashkv,btree,lsm,skiplist}). Batched operations
// sort keys by shard to take each shard lock once per batch, and
// ordered range scans run end to end: every engine implements Range
// (the LSM via a merged memtable+runs iterator over first-class
// tombstones, the hash table via collect-and-sort), and the Store
// merges per-shard slices into one ascending emission (Range) or
// batches several ranges through one pass over the shards
// (MultiRange). cmd/kvbench benchmarks the layer across engines,
// workload mixes (zipfian skew and the YCSB-E-style scan mix from
// internal/workload) and lock choices, and examples/shardedkv walks
// through ASL-vs-sync.Mutex shard locks.
//
// Above the synchronous store sits an asynchronous combining front
// end, shardedkv.AsyncStore: each shard gets a lock-free MPSC request
// ring, callers enqueue Get/Put/Delete/Range requests and wait on
// futures (spinning or parking by core class), and whoever wins the
// shard lock's TryAcquire — big-class workers preferentially — becomes
// the combiner, draining a bounded batch of queued ops under a single
// lock take. Weak cores enqueue, strong cores combine: the
// flat-combining extension of the paper's handoff-policy argument,
// with per-shard stats (ops-per-lock-take, combiner handoffs, queue
// depth highwater, effective drain bound) to show it batching. The
// drain bound is adaptive by default: it grows toward the observed
// queue-depth highwater while big-core drains saturate it and decays
// when a ring runs dry, so hot shards batch deep and cold shards stay
// latency-lean. PutAsync/DeleteAsync submit fire-and-forget writes
// whose futures recycle on execution (Flush is the write barrier).
// kvbench -pipeline adds pipe-<lock> rows (and -ff pipe-ff-<lock>
// rows) so handoff policy, combining, and fire-and-forget answer the
// same contention grid.
//
// The store's data placement is dynamic: lookups route through a
// copy-on-write shard map (an extendible-hashing directory swapped
// atomically per split), and enabling Config.Reshard arms a skew
// detector that watches each shard's traffic share plus two wait
// signals — the lock-contention counters the locks.Contended wrapper
// adds to every shard lock, and the pipeline's queue-depth estimate —
// and splits a shard that sustains a configured skew factor. A split
// rendezvouses only the affected shard: its ring is drained, its keys
// partition into two children via Range, the map pointer swaps, and a
// forward pointer redirects stale-snapshot readers, so the rest of
// the store never stalls (shard fission in the spirit of Fissile
// Locks, reacting to measured saturation per Dice & Kogan). kvbench
// -reshard adds rs-<lock>/rs-pipe-<lock> rows whose records carry
// split and reshard-event counts.
//
// CI (.github/workflows/ci.yml) gates every push/PR on `make ci`
// (vet + gofmt + build + test, the race detector over all
// concurrency-bearing packages, and the -short smoke paths), then a
// non-gating job runs `make bench-json` and uploads BENCH_kvbench.json
// — an append-only array of {commit, engine, mix, lock, ops_per_sec,
// p99} records — as the bench-trajectory artifact, so performance
// history accumulates per commit.
package repro

// Version identifies this reproduction build.
const Version = "1.0.0"
