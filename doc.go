// Package repro is a from-scratch Go reproduction of "Asymmetry-aware
// Scalable Locking" (LibASL, PPoPP 2022). The implementation lives under
// internal/: internal/core holds the engine-independent LibASL logic
// (epoch registry and AIMD reorder-window controller), internal/locks
// holds real Go lock implementations including the reorderable lock and
// ASLMutex, and internal/sim + internal/amp + internal/simlock form a
// deterministic discrete-event AMP simulator used to regenerate the
// paper's figures. See DESIGN.md for the full system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package repro

// Version identifies this reproduction build.
const Version = "1.0.0"
