// Package repro is a from-scratch Go reproduction of "Asymmetry-aware
// Scalable Locking" (LibASL, PPoPP 2022) grown into a networked,
// sharded KV service that applies the paper's idea at every layer:
// admission to a contended lock depends on who is asking — strong
// (big) entrants take the fast path, latency-tolerant (little)
// entrants stand by within an SLO-fed reorder window.
//
// The layers, bottom to top (ARCHITECTURE.md walks the same path in
// detail, with the conventions each layer relies on):
//
// # Lock reproduction
//
// internal/core holds the engine-independent LibASL logic: the AIMD
// reorder-window controller (Algorithm 2), the epoch registry, and
// the worker/core-class model — including the per-operation ClassHint
// that lets a serving boundary re-class a single operation without
// re-classing the goroutine. internal/locks holds the real lock
// algorithms (TAS/ticket/MCS/ShflLock-proportional baselines, the
// reorderable lock, ASLMutex) behind the worker-aware WLock
// interface, plus observability wrappers: locks.Contended counts real
// lock waits, locks.ClassProbe records the class each acquisition was
// observed under. internal/sim + internal/amp + internal/simlock form
// the deterministic discrete-event AMP simulator that regenerates the
// paper's figures; DESIGN.md inventories the system, EXPERIMENTS.md
// the paper-vs-measured results.
//
// # Serving layer
//
// internal/shardedkv shards a KV store so that every shard pairs one
// WLock (ASLMutex by default) with one pluggable single-writer engine
// (internal/storage/{hashkv,btree,lsm,skiplist}). Batched ops take
// each shard lock once; ordered scans collect under the lock and
// emit after release. Placement is dynamic: a copy-on-write shard map
// with stable ids and forward pointers lets a skew detector split
// sustained-hot shards without stalling the rest of the store.
// Store.As / AsyncStore.As provide op-level class-override views —
// the library face of the ClassHint path.
//
// shardedkv.AsyncStore is the flat-combining front end: per-shard
// lock-free MPSC rings, futures with class-aware spin/park waiting,
// combiner election via TryAcquire with big-class preference, and an
// adaptive drain bound — weak cores enqueue, strong cores combine.
// PutAsync/DeleteAsync submit fire-and-forget writes; Flush is the
// write barrier.
//
// # Network front end
//
// internal/kvserver serves the store over TCP with a length-prefixed
// binary protocol (docs/protocol.md is normative; a test pins it to
// the code). Every request carries an SLO class byte the server maps
// to the lock class for exactly that operation: interactive requests
// run big-class (ASL fast path; elect/combine/spin on the pipeline),
// bulk requests run little-class (reorder standby; enqueue/park) and
// pass a bounded per-shard admission gate — concurrency restriction
// at the serving boundary, with interactive bypass. Per-class SLO
// epochs feed the ASL window controllers from per-request latencies.
// internal/kvclient is the concurrent pipelining client (one
// multiplexed connection, calls matched by request id).
// cmd/kvserver is the standalone binary (clean SIGTERM shutdown);
// kvbench -net drives the whole grid over the wire.
//
// # Benchmarks and CI
//
// cmd/kvbench benchmarks the serving layer across engines, workload
// mixes (internal/workload) and locks — locally and over the network
// — and appends {commit, engine, mix, lock, ops_per_sec, p99, ...}
// records to BENCH_kvbench.json (cmd/kvbench/README.md documents
// every flag, row family and the record schema).
// .github/workflows/ci.yml gates every push on `make ci`: vet, the
// repolint contract checkers, gofmt, build, tests, the race detector
// over RACE_PKGS, the -short smoke paths, and net-smoke (a real
// server driven by a real client and shut down by SIGTERM).
//
// internal/analysis + cmd/repolint machine-check the concurrency
// contracts the layers above rely on: ClassHint set/clear pairing,
// the no-callbacks-under-a-shard-lock rule, the election-probe
// convention, and append-only wire enums. `make lint` runs the suite
// as a `go vet -vettool`; ARCHITECTURE.md ("Enforced invariants")
// maps each pass to its prose rule.
package repro

// Version identifies this reproduction build.
const Version = "1.0.0"
